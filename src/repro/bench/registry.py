"""The declarative benchmark registry.

A benchmark is a function that measures **one named metric** and
returns a :class:`BenchSample`: the measured value plus a *payload* of
deterministic, timing-free facts about the run (counters, table rows,
hit rates).  The split matters — the runner repeats the function and
takes the median of the values (timing is noisy), while the payload
must be bit-identical across repeats (that invariant is pinned by
``tests/bench/test_determinism.py``).

Registration is declarative::

    @register("wire", "checksum_mb_per_s", unit="MB/s",
              higher_is_better=True, tolerance=0.8)
    def checksum_throughput(scale: float = 1.0) -> BenchSample:
        ...

* ``area`` groups metrics into one ``BENCH_<area>.json`` baseline.
* ``tolerance`` is the allowed *relative worsening* before the differ
  flags a regression (0.8 means "fails only when >5x worse" — generous
  on purpose: the gate exists to catch algorithmic regressions such as
  losing the ~144x encode cache, not scheduler noise).  Deterministic
  metrics (hit rates, counts) register tight tolerances instead.
* ``scale`` lets the runner shrink the workload for ``--smoke`` runs;
  implementations apply floors so tiny scales stay meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

__all__ = ["BenchSample", "BenchSpec", "all_specs", "areas", "get_area",
           "register"]

#: Default allowed relative worsening for wall-clock metrics.  Timing
#: on shared CI runners is noisy and baselines travel across machines;
#: the gate's job is catching order-of-magnitude algorithmic
#: regressions, which survive any realistic hardware gap.
DEFAULT_TOLERANCE = 0.8


@dataclass(frozen=True)
class BenchSample:
    """One benchmark execution: the metric value + deterministic facts.

    ``payload`` must not contain timing — it is compared for equality
    across repeat runs by the determinism test.
    """

    value: float
    payload: dict = field(default_factory=dict)


@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark: the producer of one named metric."""

    area: str
    metric: str
    unit: str
    higher_is_better: bool
    tolerance: float
    fn: Callable[..., BenchSample]
    doc: str = ""

    @property
    def key(self) -> Tuple[str, str]:
        return (self.area, self.metric)

    def run(self, scale: float = 1.0) -> BenchSample:
        sample = self.fn(scale=scale)
        if not isinstance(sample, BenchSample):
            raise TypeError(
                f"benchmark {self.area}/{self.metric} returned "
                f"{type(sample).__name__}, expected BenchSample")
        return sample


_REGISTRY: Dict[Tuple[str, str], BenchSpec] = {}


def register(area: str, metric: str, *, unit: str, higher_is_better: bool,
             tolerance: float = DEFAULT_TOLERANCE):
    """Class the decorated function as the producer of ``area/metric``."""
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")

    def deco(fn: Callable[..., BenchSample]) -> Callable[..., BenchSample]:
        spec = BenchSpec(area=area, metric=metric, unit=unit,
                         higher_is_better=higher_is_better,
                         tolerance=tolerance, fn=fn,
                         doc=(fn.__doc__ or "").strip().splitlines()[0]
                         if fn.__doc__ else "")
        if spec.key in _REGISTRY:
            raise ValueError(f"duplicate benchmark registration: "
                             f"{area}/{metric}")
        _REGISTRY[spec.key] = spec
        return fn

    return deco


def _ensure_suite_loaded() -> None:
    # The built-in suite registers itself on import; anything else
    # (tests registering synthetic specs) just adds to the same table.
    import repro.bench.suite  # noqa: F401


def all_specs(area_filter: "list[str] | None" = None) -> List[BenchSpec]:
    """Every registered spec, in registration order, optionally filtered."""
    _ensure_suite_loaded()
    specs = list(_REGISTRY.values())
    if area_filter:
        wanted = set(area_filter)
        unknown = wanted - {s.area for s in specs}
        if unknown:
            raise KeyError(f"unknown benchmark area(s): {sorted(unknown)}; "
                           f"known: {sorted({s.area for s in specs})}")
        specs = [s for s in specs if s.area in wanted]
    return specs


def areas() -> List[str]:
    """Distinct areas in first-registration order."""
    seen: Dict[str, None] = {}
    for spec in all_specs():
        seen.setdefault(spec.area, None)
    return list(seen)


def get_area(area: str) -> List[BenchSpec]:
    """Every spec registered under one area (KeyError if none)."""
    specs = all_specs([area])
    return specs
