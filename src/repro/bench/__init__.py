"""``repro.bench`` — the performance-regression harness.

Five PRs of perf-relevant work (encode caching, zero-copy decode,
streaming checksums, trace-overhead bounds, fleet scaling) shipped
before this subsystem existed, so every speed claim in the repo was
anecdotal: printed once, committed nowhere, gated by nothing.  This
package turns those claims into a *trajectory*:

* :mod:`repro.bench.registry` — a declarative benchmark registry.
  ``@register(area, metric, unit=..., higher_is_better=...)`` marks a
  function as the producer of one named metric; the function returns a
  :class:`~repro.bench.registry.BenchSample` (the measured value plus
  a deterministic, timing-free payload).
* :mod:`repro.bench.runner` — executes each registered benchmark with
  median-of-k repetition, captures the environment (Python, platform,
  ``PYTHONHASHSEED``, commit), and emits one machine-readable
  ``BENCH_<area>.json`` document per area.
* :mod:`repro.bench.diff` — the noise-tolerant baseline differ:
  per-metric relative tolerance, explicit ``new``/``missing``
  classification, and a hard rule that improvements are never flagged.
* :mod:`repro.bench.suite` — the registered benchmarks themselves:
  radio fan-out frames/sec, ``repro.wire`` checksum MB/s and
  encode-cache hit rate, fleet scaling, WIDS evaluation throughput,
  flight-recorder overhead ratio, and the sim/crypto/netstack hot
  loops under them.
* :mod:`repro.bench.records` — the structured-record sink the pytest
  benchmarks under ``benchmarks/`` emit their tables through (instead
  of ad-hoc prints), dumpable as JSON via ``--bench-records``.

The committed ``BENCH_<area>.json`` files at the repo root are the
baselines; ``python -m repro bench --check`` diffs a fresh run against
them and CI's ``bench-gate`` job fails on any regression beyond
tolerance.  Re-baseline intentionally with
``python -m repro bench --update``.  See DESIGN.md §12.
"""

from repro.bench.diff import DiffReport, MetricDelta, diff_baselines
from repro.bench.records import clear_records, emit_record, emit_table, records
from repro.bench.registry import (BenchSample, BenchSpec, all_specs, areas,
                                  get_area, register)
from repro.bench.runner import (baseline_path, capture_environment,
                                load_baselines, run_spec, run_suite,
                                write_baselines)

__all__ = [
    "BenchSample",
    "BenchSpec",
    "DiffReport",
    "MetricDelta",
    "all_specs",
    "areas",
    "baseline_path",
    "capture_environment",
    "clear_records",
    "diff_baselines",
    "emit_record",
    "emit_table",
    "get_area",
    "load_baselines",
    "records",
    "register",
    "run_spec",
    "run_suite",
    "write_baselines",
]
