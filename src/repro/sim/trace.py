"""Structured event tracing.

Every layer of the simulated stack reports interesting moments
(association, deauth injection, netsed rewrite, HMAC failure, ...) to
the simulator's :class:`Trace`.  Experiments query it instead of
scraping logs, and tests assert on it instead of monkeypatching
internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

__all__ = ["Trace", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced event.

    Attributes
    ----------
    time:
        Simulated time the event occurred.
    category:
        Dotted namespace such as ``"dot11.assoc"`` or ``"netsed.rewrite"``.
    source:
        Name of the emitting component (host or module name).
    detail:
        Free-form key/value payload describing the event.
    """

    time: float
    category: str
    source: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Defensive copy: the record is frozen but a dict is not, and a
        # caller mutating the dict it passed in (or the one returned by
        # to_dict) must not rewrite recorded history.
        object.__setattr__(self, "detail", dict(self.detail))

    def __str__(self) -> str:
        kv = " ".join(f"{k}={v!r}" for k, v in self.detail.items())
        return f"[{self.time:10.6f}] {self.category:<24} {self.source:<16} {kv}"

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form, suitable for pickling / JSON / cross-process IPC."""
        return {"time": self.time, "category": self.category,
                "source": self.source, "detail": dict(self.detail)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(time=float(data["time"]), category=str(data["category"]),
                   source=str(data["source"]),
                   detail=dict(data.get("detail") or {}))


class Trace:
    """An append-only record of simulation events with query helpers."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.records: list[TraceRecord] = []
        self.capacity = capacity
        self._listeners: list[tuple[str, Callable[[TraceRecord], None]]] = []
        self._clock: Callable[[], float] = lambda: 0.0
        self.enabled = True
        #: (category, listener, exception) triples for callbacks that
        #: raised during :meth:`emit`; contained, never re-raised.
        self.listener_errors: list[tuple[str, Callable[[TraceRecord], None], Exception]] = []

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the time source (normally ``lambda: sim.now``)."""
        self._clock = clock

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def emit(self, category: str, source: str, **detail: Any) -> Optional[TraceRecord]:
        """Record an event and notify any matching listeners."""
        if not self.enabled:
            return None
        rec = TraceRecord(time=self._clock(), category=category, source=source, detail=detail)
        self.records.append(rec)
        if self.capacity is not None and len(self.records) > self.capacity:
            # Drop the oldest half in one slice rather than one-at-a-time.
            del self.records[: self.capacity // 2]
        # Iterate a snapshot: a callback that (un)subscribes mid-emit must
        # not shift later listeners out from under the loop, and whatever
        # it changes only applies from the next emit on.
        for prefix, cb in tuple(self._listeners):
            if category.startswith(prefix):
                try:
                    cb(rec)
                except Exception as exc:
                    # Contain: one broken listener must not break the
                    # emitter or starve the remaining listeners.
                    self.listener_errors.append((category, cb, exc))
        return rec

    def subscribe(self, prefix: str, callback: Callable[[TraceRecord], None]) -> Callable[[], None]:
        """Call ``callback`` for every future record whose category starts with ``prefix``."""
        entry = (prefix, callback)
        self._listeners.append(entry)

        def unsubscribe() -> None:
            if entry in self._listeners:
                self._listeners.remove(entry)

        return unsubscribe

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def select(
        self,
        category: Optional[str] = None,
        source: Optional[str] = None,
        since: float = 0.0,
        **detail_filters: Any,
    ) -> Iterator[TraceRecord]:
        """Iterate records matching all provided filters.

        ``category`` is a prefix match; ``detail_filters`` require exact
        equality on keys of :attr:`TraceRecord.detail`.
        """
        for rec in self.records:
            if rec.time < since:
                continue
            if category is not None and not rec.category.startswith(category):
                continue
            if source is not None and rec.source != source:
                continue
            if detail_filters and any(
                rec.detail.get(k) != v for k, v in detail_filters.items()
            ):
                continue
            yield rec

    def between(self, t0: float, t1: float,
                category: Optional[str] = None, **kw: Any) -> Iterator[TraceRecord]:
        """Records with ``t0 <= time <= t1`` (plus any :meth:`select` filters)."""
        for rec in self.select(category=category, since=t0, **kw):
            if rec.time <= t1:
                yield rec

    def matching(self, prefix: str) -> Iterator[TraceRecord]:
        """Records whose category starts with ``prefix`` (e.g. ``"netsed."``)."""
        return self.select(category=prefix)

    def count(self, category: Optional[str] = None, **kw: Any) -> int:
        """Number of records matching the filters of :meth:`select`."""
        return sum(1 for _ in self.select(category=category, **kw))

    def last(self, category: Optional[str] = None, **kw: Any) -> Optional[TraceRecord]:
        """Most recent matching record, or None."""
        result = None
        for rec in self.select(category=category, **kw):
            result = rec
        return result

    def clear(self) -> None:
        self.records.clear()

    # ------------------------------------------------------------------
    # serialization (fleet workers ship sampled traces to the parent)
    # ------------------------------------------------------------------
    def to_dicts(self) -> list[dict[str, Any]]:
        """All retained records as plain dicts (see :meth:`TraceRecord.to_dict`)."""
        return [rec.to_dict() for rec in self.records]

    @classmethod
    def from_dicts(cls, dicts: list[dict[str, Any]]) -> "Trace":
        """Rebuild a (listener-less) trace from :meth:`to_dicts` output."""
        trace = cls()
        trace.records = [TraceRecord.from_dict(d) for d in dicts]
        return trace

    def summary(self) -> dict[str, Any]:
        """Compact, serializable digest: record count, per-category counts, span."""
        by_category: dict[str, int] = {}
        for rec in self.records:
            by_category[rec.category] = by_category.get(rec.category, 0) + 1
        return {
            "n": len(self.records),
            "by_category": by_category,
            "t_first": self.records[0].time if self.records else None,
            "t_last": self.records[-1].time if self.records else None,
        }

    def dump(self, category: Optional[str] = None) -> str:
        """Human-readable transcript (used by examples and debugging)."""
        return "\n".join(str(r) for r in self.select(category=category))
