"""Deterministic discrete-event simulation kernel.

The kernel is intentionally small: a priority queue of :class:`Event`
objects ordered by ``(time, sequence)``.  Ties in time are broken by
insertion order, which makes runs bit-for-bit reproducible across
platforms — a property every experiment in this reproduction relies on.

Design notes (following the HPC guides' "make it work, make it right,
measure before optimizing"):

* ``heapq`` over a list of tuples is the fastest pure-Python priority
  queue for this workload; profiling showed event dispatch is dominated
  by callback bodies, not queue management, so no further optimization
  is warranted.
* Cancellation is lazy: a cancelled event stays in the heap with its
  ``cancelled`` flag set and is skipped at pop time.  This avoids the
  O(n) cost of removal and keeps the hot loop branch-predictable.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.obs.lineage import flight_recorder
from repro.obs.runtime import active_profiler
from repro.sim.errors import SimulationError
from repro.sim.rng import SimRandom
from repro.sim.trace import Trace

__all__ = ["Event", "ScheduleError", "Simulator"]


def _dispatch_category(fn: Callable[..., Any]) -> str:
    """Profiling category for an event callback: ``kernel.<module>``.

    Grouping by the callback's defining module gives the per-subsystem
    dispatch breakdown (``kernel.radio.medium``, ``kernel.netstack.tcp``,
    ...) without requiring events to carry labels.
    """
    fn = getattr(fn, "__func__", fn)  # unwrap bound methods
    module = getattr(fn, "__module__", None) or "unknown"
    if module.startswith("repro."):
        module = module[len("repro."):]
    return "kernel." + module


class ScheduleError(SimulationError):
    """An event was scheduled in the past or on a finished simulator."""


class Event:
    """A single scheduled callback.

    Events compare by ``(time, seq)`` so that two events at the same
    simulated time fire in the order they were scheduled.
    """

    __slots__ = ("time", "seq", "fn", "args", "kwargs", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False

    def cancel(self) -> None:
        """Mark this event so the kernel skips it when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        # Hot path: called O(log n) times per heap push/pop.  Written
        # out longhand (rather than comparing two freshly-built tuples)
        # because it shows up in radio fan-out profiles.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} seq={self.seq} {name}{state}>"


class Simulator:
    """Single-threaded deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random stream.  Every stochastic
        component derives its own substream from this seed via
        :meth:`SimRandom.substream`, so adding a new random consumer
        does not perturb existing ones.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> hits = []
    >>> _ = sim.schedule(1.0, hits.append, "a")
    >>> _ = sim.schedule(0.5, hits.append, "b")
    >>> sim.run()
    >>> hits
    ['b', 'a']
    >>> sim.now
    1.0
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._events_dispatched = 0
        self.rng = SimRandom(seed)
        self.trace = Trace()
        self.trace.bind_clock(lambda: self._now)
        rec = flight_recorder()
        if rec is not None:
            # Write-only registration: the flight recorder never feeds
            # anything back into the simulation (zero perturbation); it
            # just lets the trace CLI correlate lineage hops with the
            # simulator's own event trace.
            rec.attach_sim_trace(self.trace)

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_dispatched(self) -> int:
        """Number of events executed so far (diagnostics / loop guards)."""
        return self._events_dispatched

    @property
    def pending(self) -> int:
        """Number of events still in the queue (including cancelled)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``fn(*args, **kwargs)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, whose :meth:`Event.cancel` method can
        be used to revoke it (lazy cancellation).
        """
        if delay < 0:
            raise ScheduleError(f"cannot schedule {delay!r}s in the past")
        return self.schedule_at(self._now + delay, fn, *args, **kwargs)

    def schedule_at(self, when: float, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``fn`` at absolute simulated time ``when``."""
        if when < self._now:
            raise ScheduleError(
                f"cannot schedule at t={when!r}, current time is t={self._now!r}"
            )
        ev = Event(when, self._seq, fn, args, kwargs)
        self._seq += 1
        heapq.heappush(self._queue, ev)
        return ev

    def call_soon(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``fn`` at the current time (after already-queued events)."""
        return self.schedule(0.0, fn, *args, **kwargs)

    def every(
        self,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        jitter: float = 0.0,
        until: Optional[float] = None,
    ) -> Callable[[], None]:
        """Run ``fn`` every ``interval`` seconds, starting one interval from now.

        ``jitter`` adds a uniform random offset in ``[0, jitter)`` to each
        firing (drawn from the simulator RNG, hence deterministic).
        ``until`` is an inclusive bound: a firing lands at ``until`` if the
        cadence hits it exactly, and no event is ever armed past it (so a
        bounded recurrence never drags the clock beyond its bound).
        Returns a zero-argument callable that stops the recurrence,
        cancelling the already-armed next firing.
        """
        if interval <= 0:
            raise ScheduleError("interval must be positive")
        stopped = False
        pending: list[Event] = []

        def fire() -> None:
            if stopped:
                return
            if until is not None and self._now > until:
                return
            fn(*args)
            arm()

        def arm() -> None:
            if stopped:
                return
            if until is not None and self._now >= until:
                return
            delay = interval + (self.rng.uniform(0.0, jitter) if jitter else 0.0)
            if until is not None and self._now + delay > until:
                return  # next firing would land past the bound: don't arm it
            pending.clear()
            pending.append(self.schedule(delay, fire))

        def stop() -> None:
            nonlocal stopped
            stopped = True
            for ev in pending:
                ev.cancel()

        arm()
        return stop

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next non-cancelled event.  Returns False if none left."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            if ev.time < self._now:  # pragma: no cover - defensive
                raise SimulationError("event queue corrupted: time went backwards")
            self._now = ev.time
            self._events_dispatched += 1
            prof = active_profiler()
            if prof is None:
                ev.fn(*ev.args, **ev.kwargs)
            else:
                with prof.span(_dispatch_category(ev.fn)):
                    ev.fn(*ev.args, **ev.kwargs)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        ``until`` is inclusive: events scheduled exactly at ``until`` run,
        and the clock is advanced to ``until`` even if the queue drains
        earlier, so back-to-back ``run(until=...)`` calls compose.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        dispatched = 0
        try:
            while self._queue:
                nxt = self._queue[0]
                if nxt.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and nxt.time > until:
                    break
                if max_events is not None and dispatched >= max_events:
                    return
                self.step()
                dispatched += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_for(self, duration: float, max_events: Optional[int] = None) -> None:
        """Run for ``duration`` simulated seconds from the current time."""
        self.run(until=self._now + duration, max_events=max_events)
