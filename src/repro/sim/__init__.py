"""Discrete-event simulation kernel.

Everything in :mod:`repro` runs on top of a single-threaded, deterministic
discrete-event :class:`~repro.sim.kernel.Simulator`.  Determinism is a hard
requirement: every experiment in the paper reproduction must be exactly
repeatable from a seed, so all randomness flows through
:class:`~repro.sim.rng.SimRandom` and event ordering is total (time, then
insertion sequence).
"""

from repro.sim.kernel import Event, ScheduleError, Simulator
from repro.sim.rng import SimRandom
from repro.sim.stats import Counter, Histogram, TimeSeries, Welford
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "Counter",
    "Event",
    "Histogram",
    "ScheduleError",
    "SimRandom",
    "Simulator",
    "TimeSeries",
    "Trace",
    "TraceRecord",
    "Welford",
]
