"""Small statistics toolkit used by experiments and benchmarks.

Online (single-pass) accumulators only: experiments can run for millions
of events without retaining per-sample state, except where a
distribution is explicitly wanted (:class:`Histogram`,
:class:`TimeSeries`).

Every accumulator here is *mergeable*: ``a.merge(b)`` folds ``b``'s
observations into ``a`` as if they had been added to ``a`` directly.
This is what lets :mod:`repro.fleet` shard a campaign across worker
processes and combine the per-worker partials into one aggregate —
see DESIGN.md §7 for the contract a new accumulator must satisfy.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

__all__ = ["Counter", "Histogram", "TimeSeries", "Welford", "RateMeter", "summarize"]


class Counter:
    """Named integer counters with a tidy report."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def incr(self, name: str, by: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + by

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def merge(self, other: "Counter") -> "Counter":
        """Fold ``other``'s counts into this counter (returns self)."""
        for name, count in other._counts.items():
            self._counts[name] = self._counts.get(name, 0) + count
        return self

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)

    def report(self) -> str:
        width = max((len(k) for k in self._counts), default=1)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in sorted(self._counts.items()))


class Welford:
    """Online mean/variance (Welford's algorithm; numerically stable)."""

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    def merge(self, other: "Welford") -> "Welford":
        """Combine another accumulator into this one (returns self).

        Uses Chan et al.'s parallel update, so merging partials over any
        split of a sample equals single-pass accumulation over the whole
        (up to float rounding on mean/variance; n/min/max are exact).
        """
        if other.n == 0:
            return self
        if self.n == 0:
            self.n, self._mean, self._m2 = other.n, other._mean, other._m2
            self.min, self.max = other.min, other.max
            return self
        n = self.n + other.n
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.n * other.n / n
        self._mean += delta * other.n / n
        self.n = n
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    @property
    def mean(self) -> float:
        return self._mean if self.n else math.nan

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:
        if not self.n:
            return "<Welford empty>"
        return f"<Welford n={self.n} mean={self.mean:.4g} sd={self.stdev:.4g}>"


class Histogram:
    """Fixed-bin histogram over [lo, hi); overflow/underflow tracked separately."""

    def __init__(self, lo: float, hi: float, bins: int) -> None:
        if hi <= lo or bins < 1:
            raise ValueError("invalid histogram bounds")
        self.lo, self.hi, self.bins = lo, hi, bins
        self.counts = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self._edges = [lo + (hi - lo) * i / bins for i in range(bins + 1)]

    def add(self, x: float) -> None:
        if x < self.lo:
            self.underflow += 1
        elif x >= self.hi:
            self.overflow += 1
        else:
            idx = bisect_right(self._edges, x) - 1
            self.counts[min(idx, self.bins - 1)] += 1

    def merge(self, other: "Histogram") -> "Histogram":
        """Add another histogram's counts bin-for-bin (returns self).

        Both histograms must have identical ``(lo, hi, bins)``.
        """
        if (self.lo, self.hi, self.bins) != (other.lo, other.hi, other.bins):
            raise ValueError(
                f"cannot merge histograms with different binning: "
                f"({self.lo}, {self.hi}, {self.bins}) vs "
                f"({other.lo}, {other.hi}, {other.bins})")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.underflow += other.underflow
        self.overflow += other.overflow
        return self

    @property
    def total(self) -> int:
        return sum(self.counts) + self.underflow + self.overflow

    def quantile(self, q: float) -> float:
        """Approximate quantile from bin midpoints (in-range samples only)."""
        inrange = sum(self.counts)
        if inrange == 0:
            return math.nan
        target = q * inrange
        acc = 0
        for i, c in enumerate(self.counts):
            acc += c
            if acc >= target:
                return (self._edges[i] + self._edges[i + 1]) / 2
        return self._edges[-1]


@dataclass
class TimeSeries:
    """(time, value) samples with simple resampling for reports."""

    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def add(self, t: float, v: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError("TimeSeries must be appended in time order")
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.times)

    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else math.nan

    def window(self, t0: float, t1: float) -> "TimeSeries":
        out = TimeSeries()
        for t, v in zip(self.times, self.values):
            if t0 <= t < t1:
                out.add(t, v)
        return out


class RateMeter:
    """Counts events and reports a rate over the observed span."""

    def __init__(self) -> None:
        self.count = 0
        self.first: Optional[float] = None
        self.last: Optional[float] = None

    def mark(self, t: float, n: int = 1) -> None:
        self.count += n
        if self.first is None:
            self.first = t
        self.last = t

    def rate(self) -> float:
        if self.first is None or self.last is None or self.last <= self.first:
            return 0.0
        return self.count / (self.last - self.first)


def summarize(xs: Sequence[float]) -> dict[str, float]:
    """Mean / stdev / min / max / median for a small sample (reports)."""
    if not xs:
        return {"n": 0, "mean": math.nan, "stdev": math.nan, "min": math.nan, "max": math.nan, "median": math.nan}
    w = Welford()
    w.extend(xs)
    ordered = sorted(xs)
    mid = len(ordered) // 2
    median = ordered[mid] if len(ordered) % 2 else (ordered[mid - 1] + ordered[mid]) / 2
    return {"n": w.n, "mean": w.mean, "stdev": w.stdev, "min": w.min, "max": w.max, "median": median}
