"""Exception hierarchy shared across the simulator and protocol stacks."""


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly."""


class ProtocolError(ReproError):
    """A protocol message could not be parsed or violates the state machine."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key, integrity failure, ...)."""


class IntegrityError(CryptoError):
    """An integrity check (ICV, MIC, HMAC, MD5SUM) did not verify."""


class ConfigurationError(ReproError):
    """A host, NIC, or scenario was configured inconsistently."""


class NetworkError(ReproError):
    """A network operation could not complete (no route, no ARP entry...)."""


class SocketError(NetworkError):
    """A simulated-socket operation failed (refused, reset, not connected)."""
