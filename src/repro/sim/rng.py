"""Deterministic random streams.

A single :class:`SimRandom` is owned by the simulator; components that
need independent randomness ask for a named *substream* so that adding
or removing one consumer never perturbs the draws seen by another.
Substream seeds are derived by hashing ``(parent_seed, name)`` with
SHA-256 from the standard library, which is stable across Python
versions (unlike ``hash()``).
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence, TypeVar

__all__ = ["SimRandom"]

T = TypeVar("T")


def _derive_seed(seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class SimRandom:
    """A seeded random stream with protocol-simulation helpers."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._random = random.Random(self.seed)

    # ------------------------------------------------------------------
    # stream management
    # ------------------------------------------------------------------
    def substream(self, name: str) -> "SimRandom":
        """Return an independent stream derived from this one by ``name``."""
        return SimRandom(_derive_seed(self.seed, name))

    def getstate(self):
        """The underlying generator state (an opaque, comparable value).

        Used by the kernel-equivalence differential harness to assert
        that two runs consumed *exactly* the same draws — equal results
        with a diverged stream position would still be a caching bug.
        """
        return self._random.getstate()

    # ------------------------------------------------------------------
    # basic draws (thin, documented wrappers around random.Random)
    # ------------------------------------------------------------------
    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def uniform(self, a: float, b: float) -> float:
        """Uniform float in [a, b]."""
        return self._random.uniform(a, b)

    def randint(self, a: int, b: int) -> int:
        """Uniform integer in [a, b] inclusive."""
        return self._random.randint(a, b)

    def randrange(self, start: int, stop: int | None = None) -> int:
        return self._random.randrange(start, stop)

    def choice(self, seq: Sequence[T]) -> T:
        return self._random.choice(seq)

    def sample(self, population: Sequence[T], k: int) -> list[T]:
        return self._random.sample(population, k)

    def shuffle(self, seq: list) -> None:
        self._random.shuffle(seq)

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival time with the given rate (1/mean)."""
        return self._random.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    # ------------------------------------------------------------------
    # protocol helpers
    # ------------------------------------------------------------------
    def bernoulli(self, p: float) -> bool:
        """True with probability ``p`` (clamped to [0, 1])."""
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return self._random.random() < p

    def bytes(self, n: int) -> bytes:
        """``n`` uniformly random bytes."""
        return self._random.randbytes(n)

    def mac_suffix(self) -> bytes:
        """Three random bytes for the NIC-specific half of a MAC address."""
        return self.bytes(3)

    def pick_weighted(self, items: Iterable[tuple[T, float]]) -> T:
        """Pick one item with probability proportional to its weight."""
        pairs = list(items)
        total = sum(w for _, w in pairs)
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        x = self._random.random() * total
        acc = 0.0
        for item, w in pairs:
            acc += w
            if x < acc:
                return item
        return pairs[-1][0]
