"""Simulation-wide observability: metrics, profiling spans, tracing, export.

Four pieces (see DESIGN.md §8–§9):

* :mod:`repro.obs.metrics` — a hierarchical :class:`MetricsRegistry`
  of mergeable counters/gauges/timers/histograms, instrumented at the
  hot points of the radio, netstack, dot11, hosts, attack, and defense
  layers;
* :mod:`repro.obs.profiler` — wall-clock :class:`Profiler` spans around
  kernel event dispatch and the known hot paths (radio fan-out,
  RC4/FMS, the frame codec);
* :mod:`repro.obs.runtime` — the ambient :func:`collecting` context
  that turns the instrumentation on.  When no context is active every
  hook short-circuits, and the hard invariant holds: simulated results
  are bit-for-bit identical with observability enabled, disabled, or
  absent.
* :mod:`repro.obs.lineage` + :mod:`repro.obs.export` — the causal
  frame-lineage :class:`FlightRecorder` (per-frame ``trace_id``, hop
  records, parent/child span links, last-N ring buffer) installed with
  :func:`recording`, exportable as pcap (``LINKTYPE_IEEE802_11``) or
  Chrome trace-event JSON (``python -m repro trace EXP``).

The registry obeys the ``merge()`` law of :mod:`repro.sim.stats`, so
:mod:`repro.fleet` ships one snapshot per trial and reduces them in
seed order (``python -m repro sweep --metrics out.json``); a one-shot
profile of any registered experiment is ``python -m repro profile EXP``.
"""

from repro.obs.export import (LINKTYPE_IEEE802_11, chrome_trace_dict,
                              pcap_bytes, write_chrome_trace, write_pcap)
from repro.obs.lineage import (FlightRecorder, Hop, Lineage, flight_recorder,
                               recording)
from repro.obs.metrics import (CounterMetric, GaugeMetric, HistogramMetric,
                               MetricsRegistry, TimerMetric)
from repro.obs.profiler import Profiler
from repro.obs.runtime import (Collection, active_profiler, collecting,
                               obs_metrics)

__all__ = [
    "Collection",
    "CounterMetric",
    "FlightRecorder",
    "GaugeMetric",
    "HistogramMetric",
    "Hop",
    "LINKTYPE_IEEE802_11",
    "Lineage",
    "MetricsRegistry",
    "Profiler",
    "TimerMetric",
    "active_profiler",
    "chrome_trace_dict",
    "collecting",
    "flight_recorder",
    "obs_metrics",
    "pcap_bytes",
    "recording",
    "write_chrome_trace",
    "write_pcap",
]
