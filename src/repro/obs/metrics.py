"""Mergeable metric types and the hierarchical registry.

Counters, gauges, timers, and histograms, addressed by dotted names
(``radio.deliveries``, ``tcp.retransmits``, ``netfilter.dnat_hits``).
Every type obeys the same ``merge()`` law as the accumulators in
:mod:`repro.sim.stats`: folding per-shard partials together **in shard
order** is indistinguishable from a single-pass accumulation over the
whole observation stream.  That law is what lets :mod:`repro.fleet`
ship one snapshot per trial and reduce them in seed order into an
aggregate identical to a serial run's.

This module imports only the standard library on purpose: it is pulled
in by :mod:`repro.sim.kernel` (the innermost module of the system), so
it must not depend on anything above it.

Recording is observational only — no metric ever reads the simulation
RNG or schedules an event — which is what makes the zero-perturbation
guarantee (identical simulated results with metrics on, off, or absent)
hold by construction.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Any, Dict, Iterator, Optional, Tuple, Union

__all__ = [
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
    "TimerMetric",
]


class CounterMetric:
    """A monotonically adjusted integer count."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def incr(self, by: int = 1) -> None:
        self.value += by

    def merge(self, other: "CounterMetric") -> "CounterMetric":
        """Fold another counter in (returns self): counts add."""
        self.value += other.value
        return self

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    @classmethod
    def from_dict(cls, data: dict) -> "CounterMetric":
        return cls(value=int(data["value"]))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.value}>"


class GaugeMetric:
    """A last-value-wins sample with min/max/update bookkeeping.

    The merge law treats ``other`` as the *later* shard: its last value
    wins (if it observed any), exactly as if its sets had happened after
    ours — so in-order merging reproduces single-pass accumulation.
    """

    kind = "gauge"
    __slots__ = ("value", "updates", "min", "max")

    def __init__(self) -> None:
        self.value: Optional[float] = None
        self.updates = 0
        self.min = math.inf
        self.max = -math.inf

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "GaugeMetric") -> "GaugeMetric":
        """Fold a later shard's gauge in (returns self)."""
        if other.updates:
            self.value = other.value
        self.updates += other.updates
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "value": self.value,
            "updates": self.updates,
            "min": self.min if self.updates else None,
            "max": self.max if self.updates else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GaugeMetric":
        g = cls()
        g.updates = int(data["updates"])
        if g.updates:
            g.value = data["value"]
            g.min = float(data["min"])
            g.max = float(data["max"])
        return g

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.value} (n={self.updates})>"


class TimerMetric:
    """Accumulated durations: count, total, min, max.

    Used both for simulated-time durations (e.g. per-connection RTT
    samples) and wall-clock spans exported from a
    :class:`~repro.obs.profiler.Profiler`.
    """

    kind = "timer"
    __slots__ = ("count", "total_s", "min_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.min_s = math.inf
        self.max_s = -math.inf

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else math.nan

    def merge(self, other: "TimerMetric") -> "TimerMetric":
        """Fold another timer in (returns self): counts and totals add."""
        self.count += other.count
        self.total_s += other.total_s
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)
        return self

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s if self.count else None,
            "max_s": self.max_s if self.count else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TimerMetric":
        t = cls()
        t.count = int(data["count"])
        if t.count:
            t.total_s = float(data["total_s"])
            t.min_s = float(data["min_s"])
            t.max_s = float(data["max_s"])
        return t

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Timer n={self.count} total={self.total_s:.4g}s>"


class HistogramMetric:
    """Fixed-bin histogram over ``[lo, hi)``; out-of-range tracked apart.

    Same binning semantics (and therefore the same bin-for-bin merge
    law) as :class:`repro.sim.stats.Histogram`, reimplemented here so
    the obs package stays dependency-free.
    """

    kind = "histogram"
    __slots__ = ("lo", "hi", "bins", "counts", "underflow", "overflow", "_edges")

    def __init__(self, lo: float, hi: float, bins: int) -> None:
        if hi <= lo or bins < 1:
            raise ValueError("invalid histogram bounds")
        self.lo, self.hi, self.bins = lo, hi, bins
        self.counts = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self._edges = [lo + (hi - lo) * i / bins for i in range(bins + 1)]

    def observe(self, x: float) -> None:
        if x < self.lo:
            self.underflow += 1
        elif x >= self.hi:
            self.overflow += 1
        else:
            idx = bisect_right(self._edges, x) - 1
            self.counts[min(idx, self.bins - 1)] += 1

    @property
    def total(self) -> int:
        return sum(self.counts) + self.underflow + self.overflow

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile of the in-range observations.

        Linear interpolation inside the bucket holding the ``q``-th
        in-range sample (the classic grouped-data estimator, same rule
        Prometheus applies to ``_bucket`` series): monotone in ``q``,
        always inside the occupied bucket's edges, and — because it is
        computed purely from bin counts — invariant under the merge law
        (folding shards and then asking for a quantile equals asking the
        single-pass histogram).  Underflow/overflow samples are excluded,
        mirroring :meth:`repro.sim.stats.Histogram.quantile`; ``nan``
        when no in-range sample was observed.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile fraction must be in [0, 1], got {q}")
        inrange = sum(self.counts)
        if inrange == 0:
            return math.nan
        target = q * inrange
        acc = 0
        for i, c in enumerate(self.counts):
            if not c:
                continue
            if acc + c >= target:
                left, right = self._edges[i], self._edges[i + 1]
                frac = (target - acc) / c if c else 0.0
                return left + (right - left) * frac
            acc += c
        return self._edges[-1]  # pragma: no cover - float-sum slack guard

    def merge(self, other: "HistogramMetric") -> "HistogramMetric":
        """Add another histogram's counts bin-for-bin (returns self)."""
        if (self.lo, self.hi, self.bins) != (other.lo, other.hi, other.bins):
            raise ValueError(
                f"cannot merge histograms with different binning: "
                f"({self.lo}, {self.hi}, {self.bins}) vs "
                f"({other.lo}, {other.hi}, {other.bins})")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.underflow += other.underflow
        self.overflow += other.overflow
        return self

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "lo": self.lo,
            "hi": self.hi,
            "bins": self.bins,
            "counts": list(self.counts),
            "underflow": self.underflow,
            "overflow": self.overflow,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HistogramMetric":
        h = cls(float(data["lo"]), float(data["hi"]), int(data["bins"]))
        h.counts = [int(c) for c in data["counts"]]
        h.underflow = int(data["underflow"])
        h.overflow = int(data["overflow"])
        return h

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Histogram [{self.lo},{self.hi}) n={self.total}>"


Metric = Union[CounterMetric, GaugeMetric, TimerMetric, HistogramMetric]

_METRIC_TYPES = {
    cls.kind: cls
    for cls in (CounterMetric, GaugeMetric, TimerMetric, HistogramMetric)
}


class MetricsRegistry:
    """Hierarchical (dotted-name) registry of mergeable metrics.

    The registry is the unit the fleet ships between processes: a
    worker snapshots its trial's registry with :meth:`snapshot`, the
    parent rebuilds each with :meth:`from_snapshot` and folds them
    together with :meth:`merge` in seed order.

    ``enabled=False`` turns every recording method into a cheap no-op
    (one attribute test) — the hook the zero-perturbation golden tests
    exercise.  Reading (snapshots, reports) is always allowed.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------------
    # get-or-create accessors (create even when disabled: cheap, and a
    # disabled registry should still snapshot a stable shape)
    # ------------------------------------------------------------------
    def _get(self, name: str, cls, *args) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(*args)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}")
        return metric

    def counter(self, name: str) -> CounterMetric:
        return self._get(name, CounterMetric)

    def gauge(self, name: str) -> GaugeMetric:
        return self._get(name, GaugeMetric)

    def timer(self, name: str) -> TimerMetric:
        return self._get(name, TimerMetric)

    def histogram(self, name: str, lo: float, hi: float, bins: int) -> HistogramMetric:
        return self._get(name, HistogramMetric, lo, hi, bins)

    # ------------------------------------------------------------------
    # recording conveniences (all no-ops when disabled)
    # ------------------------------------------------------------------
    def incr(self, name: str, by: int = 1) -> None:
        if not self.enabled:
            return
        self.counter(name).incr(by)

    def set_gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.gauge(name).set(value)

    def add_time(self, name: str, seconds: float) -> None:
        if not self.enabled:
            return
        self.timer(name).add(seconds)

    def observe(self, name: str, x: float, *, lo: float, hi: float, bins: int) -> None:
        if not self.enabled:
            return
        self.histogram(name, lo, hi, bins).observe(x)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def value(self, name: str, default: int = 0) -> int:
        """Counter value by name (0 for absent counters)."""
        metric = self._metrics.get(name)
        return metric.value if isinstance(metric, CounterMetric) else default

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def subtree(self, prefix: str) -> Dict[str, Metric]:
        """All metrics whose dotted name starts with ``prefix``."""
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return {name: m for name, m in self._metrics.items()
                if name == prefix or name.startswith(dotted)}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Tuple[str, Metric]]:
        for name in sorted(self._metrics):
            yield name, self._metrics[name]

    # ------------------------------------------------------------------
    # merge / serialization (the fleet reduction pipeline)
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold a later shard's registry into this one (returns self)."""
        for name, metric in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                # Deep-copy via the serialized form so later merges
                # cannot reach back into the source registry.
                self._metrics[name] = type(metric).from_dict(metric.to_dict())
            elif type(mine) is not type(metric):
                raise ValueError(
                    f"cannot merge metric {name!r}: {mine.kind} vs {metric.kind}")
            else:
                mine.merge(metric)
        return self

    def snapshot(self) -> dict:
        """Plain-dict form: ``{dotted_name: metric.to_dict()}``."""
        return {name: self._metrics[name].to_dict()
                for name in sorted(self._metrics)}

    @classmethod
    def from_snapshot(cls, data: dict) -> "MetricsRegistry":
        reg = cls()
        for name, metric_data in data.items():
            kind = metric_data.get("kind")
            metric_cls = _METRIC_TYPES.get(kind)
            if metric_cls is None:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
            reg._metrics[name] = metric_cls.from_dict(metric_data)
        return reg

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> str:
        """Human-readable listing, one metric per line, sorted by name."""
        lines = []
        width = max((len(n) for n in self._metrics), default=1)
        for name, metric in self:
            if isinstance(metric, CounterMetric):
                desc = str(metric.value)
            elif isinstance(metric, GaugeMetric):
                desc = (f"{metric.value} (n={metric.updates}, "
                        f"min={metric.min:g}, max={metric.max:g})"
                        if metric.updates else "unset")
            elif isinstance(metric, TimerMetric):
                desc = (f"n={metric.count} total={metric.total_s:.6g}s "
                        f"mean={metric.mean_s:.3g}s" if metric.count
                        else "n=0")
            else:
                desc = f"n={metric.total} [{metric.lo:g},{metric.hi:g})x{metric.bins}"
            lines.append(f"{name:<{width}}  {metric.kind:<9}  {desc}")
        return "\n".join(lines)
