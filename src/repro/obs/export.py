"""Flight-recorder export: pcap and Chrome trace-event JSON, stdlib-only.

Two consumers, two formats:

* :func:`write_pcap` — classic libpcap capture file (magic
  ``0xa1b2c3d4``, version 2.4) with ``LINKTYPE_IEEE802_11`` (105):
  every recorded 802.11 lineage whose raw bytes were captured becomes
  one packet record, timestamped at first transmission.  Opens in
  Wireshark/tcpdump.
* :func:`write_chrome_trace` — the Trace Event Format consumed by
  ``chrome://tracing`` and Perfetto: one track per host, one slice per
  lineage on its origin's track, an instant event per hop, and flow
  arrows along parent/child span links so the rogue bridge's
  re-emissions draw as arrows from cause to copy.

Both writers are pure functions of the recorder's contents and use
only :mod:`repro.wire`/:mod:`json`.
"""

from __future__ import annotations

import json
from typing import IO, Any, Iterable, Union

from repro.obs.lineage import FlightRecorder, Lineage
from repro.wire import Field, HeaderSpec, u16, u32

__all__ = ["LINKTYPE_IEEE802_11", "chrome_trace_dict", "pcap_bytes",
           "write_chrome_trace", "write_pcap"]

#: https://www.tcpdump.org/linktypes.html — 802.11 header + body, no radiotap.
LINKTYPE_IEEE802_11 = 105

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
PCAP_SNAPLEN = 65535

# Classic libpcap file header and per-record header, little-endian.
_PCAP_GLOBAL = HeaderSpec(
    "pcap global header", "<",
    u32("magic"),
    u16("version_major"),
    u16("version_minor"),
    Field("thiszone", "i"),
    u32("sigfigs"),
    u32("snaplen"),
    u32("linktype"),
)
_PCAP_RECORD = HeaderSpec(
    "pcap record header", "<",
    u32("ts_sec"),
    u32("ts_usec"),
    u32("incl_len"),
    u32("orig_len"),
)


def _lineages(source: Union[FlightRecorder, Iterable[Lineage]]) -> list[Lineage]:
    if isinstance(source, FlightRecorder):
        return source.lineages()
    return list(source)


# ----------------------------------------------------------------------
# pcap
# ----------------------------------------------------------------------
def pcap_bytes(source: Union[FlightRecorder, Iterable[Lineage]]) -> bytes:
    """Serialize recorded 802.11 frames as a pcap capture file.

    Only ``kind == "dot11"`` lineages with captured raw bytes are
    written (the file's single link type is 802.11); records are
    ordered by first-transmission time.
    """
    frames = sorted(
        (ln for ln in _lineages(source) if ln.kind == "dot11" and ln.raw),
        key=lambda ln: (ln.t0, ln.trace_id),
    )
    out = bytearray(_PCAP_GLOBAL.pack(
        magic=PCAP_MAGIC,
        version_major=PCAP_VERSION[0],
        version_minor=PCAP_VERSION[1],
        thiszone=0,
        sigfigs=0,
        snaplen=PCAP_SNAPLEN,
        linktype=LINKTYPE_IEEE802_11,
    ))
    for lineage in frames:
        raw = lineage.raw[:PCAP_SNAPLEN]
        ts_sec = int(lineage.t0)
        ts_usec = int(round((lineage.t0 - ts_sec) * 1e6))
        if ts_usec >= 1_000_000:          # guard rounding at .999999+
            ts_sec, ts_usec = ts_sec + 1, 0
        out += _PCAP_RECORD.pack(ts_sec=ts_sec, ts_usec=ts_usec,
                                 incl_len=len(raw), orig_len=len(lineage.raw))
        out += raw
    return bytes(out)


def write_pcap(dest: Union[str, IO[bytes]],
               source: Union[FlightRecorder, Iterable[Lineage]]) -> int:
    """Write :func:`pcap_bytes` to a path or binary file object.

    Returns the number of packet records written.
    """
    payload = pcap_bytes(source)
    n = sum(1 for ln in _lineages(source) if ln.kind == "dot11" and ln.raw)
    if isinstance(dest, str):
        with open(dest, "wb") as fh:
            fh.write(payload)
    else:
        dest.write(payload)
    return n


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def chrome_trace_dict(source: Union[FlightRecorder, Iterable[Lineage]]) -> dict[str, Any]:
    """Build a Trace Event Format document (load in Perfetto/chrome://tracing).

    Layout: pid 1 is the simulation; each host (hop ``host`` or lineage
    origin) gets a thread track.  A lineage renders as a complete ("X")
    slice on its origin track spanning first transmission to last hop,
    each hop as an instant ("i") event on the host it occurred at, and
    each parent→child link as a flow arrow ("s"/"f").
    """
    lineages = sorted(_lineages(source), key=lambda ln: (ln.t0, ln.trace_id))
    tids: dict[str, int] = {}

    def tid(host: str) -> int:
        if host not in tids:
            tids[host] = len(tids) + 1
        return tids[host]

    def us(t: float) -> float:
        return t * 1e6

    events: list[dict[str, Any]] = []
    by_id = {ln.trace_id: ln for ln in lineages}
    for ln in lineages:
        t_end = max([ln.t0] + [hop.t for hop in ln.hops])
        events.append({
            "name": f"frame #{ln.trace_id} ({ln.kind})",
            "cat": ln.kind, "ph": "X", "pid": 1, "tid": tid(ln.origin),
            "ts": us(ln.t0), "dur": max(us(t_end) - us(ln.t0), 1.0),
            "args": {"trace_id": ln.trace_id, "parent": ln.parent,
                     "hops": len(ln.hops), "origin": ln.origin},
        })
        for hop in ln.hops:
            events.append({
                "name": f"{hop.layer}.{hop.action}",
                "cat": hop.layer, "ph": "i", "s": "t",
                "pid": 1, "tid": tid(hop.host or ln.origin),
                "ts": us(hop.t),
                "args": {"trace_id": ln.trace_id, **hop.detail},
            })
        if ln.parent is not None and ln.parent in by_id:
            parent = by_id[ln.parent]
            events.append({"name": "derived", "cat": "lineage", "ph": "s",
                           "id": ln.trace_id, "pid": 1,
                           "tid": tid(parent.origin), "ts": us(ln.t0)})
            events.append({"name": "derived", "cat": "lineage", "ph": "f",
                           "bp": "e", "id": ln.trace_id, "pid": 1,
                           "tid": tid(ln.origin), "ts": us(ln.t0)})
    meta: list[dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 1,
        "args": {"name": "repro simulation"},
    }]
    for host, host_tid in sorted(tids.items(), key=lambda kv: kv[1]):
        meta.append({"name": "thread_name", "ph": "M", "pid": 1,
                     "tid": host_tid, "args": {"name": host}})
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(dest: Union[str, IO[str]],
                       source: Union[FlightRecorder, Iterable[Lineage]]) -> int:
    """Write :func:`chrome_trace_dict` as JSON; returns the event count."""
    doc = chrome_trace_dict(source)
    if isinstance(dest, str):
        with open(dest, "w") as fh:
            json.dump(doc, fh)
    else:
        json.dump(doc, dest)
    return len(doc["traceEvents"])
