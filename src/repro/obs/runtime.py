"""The ambient collection context that instrumentation reports into.

Hot-path code asks two questions, both answered here in a handful of
machine instructions when observability is off:

* :func:`obs_metrics` — the active :class:`MetricsRegistry`, or ``None``
  when collection is absent/disabled.  Call sites guard with
  ``m = obs_metrics()`` / ``if m is not None: m.incr(...)`` so the
  common (off) path costs one global read and one comparison.
* :func:`active_profiler` — the active :class:`Profiler` or ``None``;
  call sites only open a span when one is installed.

A context is installed with :func:`collecting`::

    with collecting(profile=True) as col:
        result = spec.runner()          # any number of Simulators inside
    print(col.profiler.report())
    payload = col.snapshot()            # mergeable metrics dict

Contexts nest (the innermost wins) and are restored on exit even when
the body raises — including the fleet worker's SIGALRM trial timeout.
The simulation never reads anything back out of the context, so
entering one cannot change simulated results (the zero-perturbation
invariant pinned by the determinism golden tests).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import Profiler

__all__ = ["Collection", "active_profiler", "collecting", "obs_metrics"]


class Collection:
    """One observability session: a registry plus an optional profiler."""

    def __init__(self, *, metrics: bool = True, profile: bool = False) -> None:
        self.registry = MetricsRegistry(enabled=metrics)
        self.profiler: Optional[Profiler] = Profiler() if profile else None

    def snapshot(self) -> dict:
        """The registry's mergeable snapshot (see ``MetricsRegistry``)."""
        return self.registry.snapshot()


_active: Optional[Collection] = None


@contextmanager
def collecting(*, metrics: bool = True, profile: bool = False) -> Iterator[Collection]:
    """Install a fresh :class:`Collection` for the duration of the block.

    ``metrics=False`` installs a *disabled* registry: instrumentation
    still finds a context but every recording call is a no-op — the
    "disabled" leg of the zero-perturbation golden tests.
    """
    global _active
    previous = _active
    collection = Collection(metrics=metrics, profile=profile)
    _active = collection
    try:
        yield collection
    finally:
        _active = previous


def obs_metrics() -> Optional[MetricsRegistry]:
    """The active, enabled registry — or ``None`` (record nothing)."""
    collection = _active
    if collection is None or not collection.registry.enabled:
        return None
    return collection.registry


def active_profiler() -> Optional[Profiler]:
    """The active profiler — or ``None`` (skip the span)."""
    collection = _active
    return collection.profiler if collection is not None else None
