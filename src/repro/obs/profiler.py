"""Wall-clock profiling spans with a per-category time/count breakdown.

The profiler answers "where does the *runtime* go" (as opposed to the
metrics registry's "what did the *simulation* do").  Spans are cheap
category-labelled stopwatches around the known hot paths — kernel event
dispatch, radio fan-out, RC4/FMS, the frame codec — accumulated into
``(count, total, min, max)`` per category.

Wall-clock readings never feed back into the simulation, so profiling
cannot perturb simulated results; it is also mergeable (counts and
totals add), so fleet workers can ship per-trial breakdowns for the
parent to reduce alongside the metrics snapshots.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List, Tuple

__all__ = ["Profiler"]


class Profiler:
    """Per-category wall-clock accumulator.

    Categories are dotted names like ``kernel.radio.medium`` or
    ``crypto.rc4``.  Use :meth:`span` as a context manager around the
    timed region, or :meth:`record` with an externally measured
    duration.
    """

    def __init__(self) -> None:
        # category -> [count, total_s, min_s, max_s]
        self._acc: Dict[str, List[float]] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, category: str) -> Iterator[None]:
        """Time a ``with`` block under ``category``."""
        t0 = perf_counter()
        try:
            yield
        finally:
            self.record(category, perf_counter() - t0)

    def record(self, category: str, seconds: float) -> None:
        acc = self._acc.get(category)
        if acc is None:
            self._acc[category] = [1, seconds, seconds, seconds]
            return
        acc[0] += 1
        acc[1] += seconds
        if seconds < acc[2]:
            acc[2] = seconds
        if seconds > acc[3]:
            acc[3] = seconds

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def categories(self) -> list[str]:
        return sorted(self._acc)

    def count(self, category: str) -> int:
        acc = self._acc.get(category)
        return int(acc[0]) if acc else 0

    def total_s(self, category: str) -> float:
        acc = self._acc.get(category)
        return acc[1] if acc else 0.0

    def mean_s(self, category: str) -> float:
        acc = self._acc.get(category)
        return acc[1] / acc[0] if acc else math.nan

    def grand_total_s(self) -> float:
        return sum(acc[1] for acc in self._acc.values())

    def __len__(self) -> int:
        return len(self._acc)

    def __iter__(self) -> Iterator[Tuple[str, int, float]]:
        """(category, count, total_s) triples, largest total first."""
        for category in sorted(self._acc,
                               key=lambda c: (-self._acc[c][1], c)):
            acc = self._acc[category]
            yield category, int(acc[0]), acc[1]

    # ------------------------------------------------------------------
    # merge / serialization
    # ------------------------------------------------------------------
    def merge(self, other: "Profiler") -> "Profiler":
        """Fold another profiler's accumulators in (returns self)."""
        for category, acc in other._acc.items():
            mine = self._acc.get(category)
            if mine is None:
                self._acc[category] = list(acc)
            else:
                mine[0] += acc[0]
                mine[1] += acc[1]
                mine[2] = min(mine[2], acc[2])
                mine[3] = max(mine[3], acc[3])
        return self

    def to_dict(self) -> dict:
        return {category: {"count": int(acc[0]), "total_s": acc[1],
                           "min_s": acc[2], "max_s": acc[3]}
                for category, acc in sorted(self._acc.items())}

    @classmethod
    def from_dict(cls, data: dict) -> "Profiler":
        prof = cls()
        for category, acc in data.items():
            prof._acc[category] = [int(acc["count"]), float(acc["total_s"]),
                                   float(acc["min_s"]), float(acc["max_s"])]
        return prof

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def breakdown(self) -> list[dict]:
        """Rows for the ``repro profile`` table, largest total first."""
        grand = self.grand_total_s()
        rows = []
        for category, count, total in self:
            rows.append({
                "category": category,
                "calls": count,
                "total_ms": round(total * 1e3, 3),
                "mean_us": round(total / count * 1e6, 2) if count else 0.0,
                "share": f"{(total / grand * 100.0) if grand else 0.0:.1f}%",
            })
        return rows

    def report(self) -> str:
        """Aligned per-category time/count breakdown."""
        rows = self.breakdown()
        if not rows:
            return "(no spans recorded)"
        headers = ["category", "calls", "total_ms", "mean_us", "share"]
        table = [[str(r[h]) for h in headers] for r in rows]
        widths = [max(len(h), *(len(row[i]) for row in table))
                  for i, h in enumerate(headers)]
        lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
        for row in table:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)
