"""Causal frame-lineage tracing: the flight recorder.

The third observability pillar (after metrics and profiling, DESIGN.md
§8): a distributed-tracing view of individual frames.  Every frame put
on the air (or wire) while a recorder is installed gets a stable
``trace_id`` at origin and accumulates :class:`Hop` records —
``(time, host, layer, action, detail)`` — as it crosses the radio,
codec, NIC/AP, netstack, attack, and defense layers.  Frames *derived*
from another frame (an AP relaying a client's frame, the rogue bridge
re-emitting a rewritten download, a VPN tunnel re-encapsulating an
inner packet) are linked to their cause with parent/child span links,
so the full Fig-2 MITM path — server → rogue bridge → netsed rewrite →
victim NIC — reconstructs as a chain of lineages.

Propagation mechanics
---------------------
The simulator delivers the *same* frame object to every receiver, so a
``trace_id`` attribute on the frame survives the air/wire gap even
across scheduled (asynchronous) deliveries.  Within one kernel event,
synchronous processing chains (frame rx → IP → TCP → application →
new frame tx) are linked through an ambient *current lineage* stack:
delivery pushes the incoming frame's id, and any frame transmitted
before it pops becomes that frame's child.  Work rescheduled through a
timer (TCP retransmission backoff, application think time) starts a
fresh root — a deliberate, documented cut: the recorder traces frame
causality, not full program causality.

Zero-perturbation contract
--------------------------
Identical to metrics/profiling: every call site guards with
``rec = flight_recorder()`` / ``if rec is not None`` so the absent
path costs one global read; the recorder never touches the simulation
RNG (ids come from a plain counter) and the simulation never reads
anything back out of it.  The determinism goldens pin that a run is
bit-identical with recording on, off, or absent.

Memory is bounded twice over: the recorder is a ring buffer of the
last ``capacity`` lineages (oldest evicted first), and each lineage
keeps at most ``max_hops`` hops (later hops are counted, not stored).
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

__all__ = ["FlightRecorder", "Hop", "Lineage", "flight_recorder", "recording"]


@dataclass(frozen=True)
class Hop:
    """One step of a frame's journey through the stack."""

    t: float
    host: str
    layer: str
    action: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Same defensive copy as TraceRecord: recorded history must not
        # alias a dict the caller may mutate afterwards.
        object.__setattr__(self, "detail", dict(self.detail))

    def __str__(self) -> str:
        kv = " ".join(f"{k}={v!r}" for k, v in self.detail.items())
        return f"[{self.t:10.6f}] {self.host:<16} {self.layer:>8}.{self.action:<12} {kv}"

    def to_dict(self) -> dict[str, Any]:
        return {"t": self.t, "host": self.host, "layer": self.layer,
                "action": self.action, "detail": dict(self.detail)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Hop":
        return cls(t=float(data["t"]), host=str(data["host"]),
                   layer=str(data["layer"]), action=str(data["action"]),
                   detail=dict(data.get("detail") or {}))


class Lineage:
    """The recorded life of one frame: origin, hops, and span links."""

    __slots__ = ("trace_id", "parent", "kind", "origin", "t0", "hops",
                 "hops_dropped", "raw", "children")

    def __init__(self, trace_id: int, *, kind: str, origin: str, t0: float,
                 parent: Optional[int] = None) -> None:
        self.trace_id = trace_id
        self.parent = parent          # trace_id of the causing frame, or None
        self.kind = kind              # "dot11" | "ether"
        self.origin = origin          # port/host that first transmitted it
        self.t0 = t0
        self.hops: list[Hop] = []
        self.hops_dropped = 0         # hops beyond max_hops (counted, not kept)
        self.raw: Optional[bytes] = None   # frame bytes as first transmitted
        self.children: list[int] = []      # trace_ids derived from this frame

    def find(self, layer: Optional[str] = None,
             action: Optional[str] = None) -> Iterator[Hop]:
        """Hops matching the given layer and/or action (prefix on action)."""
        for hop in self.hops:
            if layer is not None and hop.layer != layer:
                continue
            if action is not None and not hop.action.startswith(action):
                continue
            yield hop

    def to_dict(self, *, raw_limit: Optional[int] = None) -> dict[str, Any]:
        """Plain-dict form for IPC/JSON; ``raw_limit`` truncates frame bytes."""
        raw = self.raw
        if raw is not None and raw_limit is not None:
            raw = raw[:raw_limit]
        return {
            "trace_id": self.trace_id,
            "parent": self.parent,
            "kind": self.kind,
            "origin": self.origin,
            "t0": self.t0,
            "hops": [hop.to_dict() for hop in self.hops],
            "hops_dropped": self.hops_dropped,
            "raw": raw.hex() if raw is not None else None,
            "children": list(self.children),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Lineage":
        lineage = cls(int(data["trace_id"]), kind=str(data["kind"]),
                      origin=str(data["origin"]), t0=float(data["t0"]),
                      parent=data.get("parent"))
        lineage.hops = [Hop.from_dict(h) for h in data.get("hops", [])]
        lineage.hops_dropped = int(data.get("hops_dropped", 0))
        raw = data.get("raw")
        lineage.raw = bytes.fromhex(raw) if raw else None
        lineage.children = list(data.get("children", []))
        return lineage

    def __repr__(self) -> str:
        return (f"<Lineage #{self.trace_id} {self.kind} from {self.origin} "
                f"t0={self.t0:.6f} hops={len(self.hops)}"
                f"{' parent=#%d' % self.parent if self.parent else ''}>")


class FlightRecorder:
    """A bounded ring buffer of frame lineages.

    ``capacity`` bounds the number of lineages retained (last-N frames;
    the oldest is evicted first and hops addressed to an evicted id are
    dropped silently).  ``max_hops`` bounds each lineage's hop list;
    ``capture_bytes`` controls whether the as-transmitted frame bytes
    are kept for pcap export.
    """

    def __init__(self, capacity: int = 4096, *, max_hops: int = 96,
                 capture_bytes: bool = True) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self.max_hops = max_hops
        self.capture_bytes = capture_bytes
        self.evicted = 0
        self._lineages: "OrderedDict[int, Lineage]" = OrderedDict()
        self._next_id = 1
        self._stack: list[int] = []   # current-lineage context (innermost last)
        self._suspended = 0           # re-entrancy guard for raw-byte capture
        self._now = 0.0               # last simulation time seen (see hop())
        self.sim_traces: list = []    # Trace of each Simulator built under us

    def attach_sim_trace(self, trace) -> None:
        """Register a simulator's event :class:`~repro.sim.trace.Trace`.

        Write-only from the simulation's point of view: the kernel calls
        this at construction so offline consumers (the ``trace`` CLI) can
        corroborate lineage hops against the trace stream with
        ``Trace.between`` / ``Trace.matching``.
        """
        if trace not in self.sim_traces:
            self.sim_traces.append(trace)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def begin(self, kind: str, origin: str, t: float,
              parent: Optional[int] = None) -> int:
        """Open a new lineage and return its trace_id.

        ``parent`` defaults to the current ambient lineage (the frame
        whose delivery is being processed), which is how bridged and
        rewritten copies acquire their span links.
        """
        if parent is None:
            parent = self.current()
        trace_id = self._next_id
        self._next_id += 1
        self._now = t
        lineage = Lineage(trace_id, kind=kind, origin=origin, t0=t, parent=parent)
        if parent is not None:
            cause = self._lineages.get(parent)
            if cause is not None:
                cause.children.append(trace_id)
        self._lineages[trace_id] = lineage
        while len(self._lineages) > self.capacity:
            self._lineages.popitem(last=False)
            self.evicted += 1
        return trace_id

    def hop(self, layer: str, action: str, *, trace_id: Optional[int] = None,
            host: str = "", t: Optional[float] = None, **detail: Any) -> None:
        """Attach a hop to ``trace_id`` (default: the current lineage).

        ``t=None`` stamps the hop with the last simulation time the
        recorder has seen — for call sites (the frame codec, proxies)
        with no simulator reference in scope.  Hops for unknown/evicted
        ids — or while raw-byte capture is in progress — are dropped
        silently: the recorder is best-effort by design and must never
        raise into the simulation.
        """
        if self._suspended:
            return
        if t is None:
            t = self._now
        else:
            self._now = t
        if trace_id is None:
            trace_id = self.current()
        if trace_id is None:
            return
        lineage = self._lineages.get(trace_id)
        if lineage is None:
            return
        if len(lineage.hops) >= self.max_hops:
            lineage.hops_dropped += 1
            return
        lineage.hops.append(Hop(t=t, host=host, layer=layer, action=action,
                                detail=detail))

    def attach_raw(self, trace_id: int, raw: bytes) -> None:
        """Keep the as-transmitted frame bytes (first capture wins)."""
        lineage = self._lineages.get(trace_id)
        if lineage is not None and lineage.raw is None:
            lineage.raw = raw

    # ------------------------------------------------------------------
    # ambient current-lineage context
    # ------------------------------------------------------------------
    def current(self) -> Optional[int]:
        """The lineage whose frame is currently being processed, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def frame_context(self, trace_id: Optional[int]) -> Iterator[None]:
        """Make ``trace_id`` the ambient lineage for the enclosed delivery."""
        if trace_id is None:
            yield
            return
        self._stack.append(trace_id)
        try:
            yield
        finally:
            self._stack.pop()

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """Drop hops for the duration (guards raw-byte self-capture)."""
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._lineages)

    def get(self, trace_id: int) -> Optional[Lineage]:
        return self._lineages.get(trace_id)

    def lineages(self) -> list[Lineage]:
        """Retained lineages, oldest first."""
        return list(self._lineages.values())

    def find_hops(self, layer: Optional[str] = None,
                  action: Optional[str] = None) -> Iterator[tuple[Lineage, Hop]]:
        """(lineage, hop) pairs across the ring matching layer/action."""
        for lineage in self._lineages.values():
            for hop in lineage.find(layer, action):
                yield lineage, hop

    def ancestors(self, trace_id: int) -> list[Lineage]:
        """Chain root → ... → ``trace_id`` (truncated at evicted links)."""
        chain: list[Lineage] = []
        seen: set[int] = set()
        cursor: Optional[int] = trace_id
        while cursor is not None and cursor not in seen:
            seen.add(cursor)
            lineage = self._lineages.get(cursor)
            if lineage is None:
                break
            chain.append(lineage)
            cursor = lineage.parent
        chain.reverse()
        return chain

    def descendants(self, trace_id: int) -> list[Lineage]:
        """All retained lineages reachable via child links, breadth-first."""
        out: list[Lineage] = []
        seen: set[int] = {trace_id}
        queue = list(self._lineages[trace_id].children) if trace_id in self._lineages else []
        while queue:
            child_id = queue.pop(0)
            if child_id in seen:
                continue
            seen.add(child_id)
            child = self._lineages.get(child_id)
            if child is None:
                continue
            out.append(child)
            queue.extend(child.children)
        return out

    # ------------------------------------------------------------------
    # serialization (fleet workers ship lineage samples to the parent)
    # ------------------------------------------------------------------
    def to_dicts(self, *, limit: Optional[int] = None,
                 raw_limit: Optional[int] = 256) -> list[dict[str, Any]]:
        """The newest ``limit`` lineages as plain dicts, oldest first."""
        lineages = self.lineages()
        if limit is not None:
            lineages = lineages[-limit:]
        return [ln.to_dict(raw_limit=raw_limit) for ln in lineages]

    @classmethod
    def from_dicts(cls, dicts: list[dict[str, Any]],
                   capacity: Optional[int] = None) -> "FlightRecorder":
        """Rebuild a (query-only) recorder from :meth:`to_dicts` output."""
        recorder = cls(capacity=max(capacity or len(dicts), 1))
        for data in dicts:
            lineage = Lineage.from_dict(data)
            recorder._lineages[lineage.trace_id] = lineage
            recorder._next_id = max(recorder._next_id, lineage.trace_id + 1)
        return recorder

    def summary(self) -> dict[str, Any]:
        """Compact digest: counts by kind, hop totals, eviction pressure."""
        by_kind: dict[str, int] = {}
        hops = 0
        for lineage in self._lineages.values():
            by_kind[lineage.kind] = by_kind.get(lineage.kind, 0) + 1
            hops += len(lineage.hops)
        return {"lineages": len(self._lineages), "by_kind": by_kind,
                "hops": hops, "evicted": self.evicted}


_active: Optional[FlightRecorder] = None


@contextmanager
def recording(capacity: int = 4096, *, max_hops: int = 96,
              capture_bytes: bool = True) -> Iterator[FlightRecorder]:
    """Install a fresh :class:`FlightRecorder` for the duration of the block.

    Nests like :func:`repro.obs.runtime.collecting` (innermost wins) and
    restores the previous recorder even when the body raises.
    """
    global _active
    previous = _active
    recorder = FlightRecorder(capacity, max_hops=max_hops,
                              capture_bytes=capture_bytes)
    _active = recorder
    try:
        yield recorder
    finally:
        _active = previous


def flight_recorder() -> Optional[FlightRecorder]:
    """The active recorder — or ``None`` (record nothing)."""
    return _active
