"""802.11 frame model with byte-level serialization.

Frames serialize to wire bytes (24-byte MAC header, body, CRC-32 FCS)
and parse back.  This is not gratuitous realism: WEP encrypts the
*serialized* body, the FMS attack reads the first ciphertext byte, and
the sequence-control detector reads the raw header — all of which need
real bytes on the simulated air.

Only the frame types the paper's scenarios exercise are modelled:
management (beacon, probe, auth, assoc, deauth, disassoc), data, and
ACK.  RTS/CTS and fragmentation are out of scope (nothing in the paper
depends on them).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.crypto.crc import crc32
from repro.dot11.ies import (
    IeId,
    InformationElement,
    challenge_ie,
    ds_param_ie,
    find_ie,
    pack_ies,
    parse_ies,
    rates_ie,
    ssid_ie,
)
from repro.dot11.mac import BROADCAST, MacAddress
from repro.obs.lineage import flight_recorder
from repro.obs.runtime import active_profiler, obs_metrics
from repro.sim.errors import ProtocolError
from repro.wire import EncodeCache, HeaderSpec, fixed_bytes, u8, u16

__all__ = [
    "CAP_ESS",
    "CAP_PRIVACY",
    "AuthAlgorithm",
    "BeaconInfo",
    "Dot11Frame",
    "FrameSubtype",
    "FrameType",
    "ReasonCode",
    "StatusCode",
    "make_ack",
    "make_assoc_request",
    "make_assoc_response",
    "make_auth",
    "make_beacon",
    "make_data",
    "make_deauth",
    "make_disassoc",
    "make_probe_request",
    "make_probe_response",
    "reason_name",
]

HEADER_LEN = 24
FCS_LEN = 4

# Capability field bits (beacon / probe response / assoc request).
CAP_ESS = 0x0001
CAP_PRIVACY = 0x0010  # "WEP required" — what Fig. 1's APs both advertise


class FrameType(enum.IntEnum):
    MANAGEMENT = 0
    CONTROL = 1
    DATA = 2


class FrameSubtype(enum.IntEnum):
    """(type, subtype) pairs flattened into one enum for convenience."""

    ASSOC_REQ = 0x00
    ASSOC_RESP = 0x01
    PROBE_REQ = 0x04
    PROBE_RESP = 0x05
    BEACON = 0x08
    DISASSOC = 0x0A
    AUTH = 0x0B
    DEAUTH = 0x0C
    DATA = 0x20
    ACK = 0x1D

    @property
    def frame_type(self) -> FrameType:
        return FrameType((self.value >> 4) & 0x3) if self.value >= 0x10 else FrameType.MANAGEMENT

    @property
    def subtype_bits(self) -> int:
        return self.value & 0x0F


class AuthAlgorithm(enum.IntEnum):
    OPEN_SYSTEM = 0
    SHARED_KEY = 1
    SAE = 3  # 802.11s/WPA3 simultaneous authentication of equals


class ReasonCode(enum.IntEnum):
    """Standard deauth/disassoc reason codes (802.11-2016 Table 9-45 subset).

    Carrying the *standard* numbers matters operationally: a WIDS
    operator reading a trace must be able to tell an AP's legitimate
    inactivity kick (4) from an attacker's forged PREV_AUTH_EXPIRED
    flood, and a PMF station logs INVALID_MDE-class rejections with the
    802.11w numbers real gear would show.
    """

    UNSPECIFIED = 1
    PREV_AUTH_EXPIRED = 2
    DEAUTH_LEAVING = 3
    INACTIVITY = 4
    AP_OVERLOAD = 5
    CLASS2_FROM_NONAUTH = 6
    CLASS3_FROM_NONASSOC = 7
    DISASSOC_LEAVING = 8
    ASSOC_WITHOUT_AUTH = 9
    # 802.11i (RSN) range
    INVALID_IE = 13
    MIC_FAILURE = 14
    FOURWAY_HANDSHAKE_TIMEOUT = 15
    GROUP_KEY_HANDSHAKE_TIMEOUT = 16
    IE_DIFFERENT_FROM_ASSOC = 17
    INVALID_GROUP_CIPHER = 18
    INVALID_PAIRWISE_CIPHER = 19
    INVALID_AKMP = 20
    UNSUPPORTED_RSN_VERSION = 21
    INVALID_RSN_CAPABILITIES = 22
    IEEE_8021X_AUTH_FAILED = 23
    CIPHER_REJECTED_PER_POLICY = 24


def reason_name(code: int) -> str:
    """Human-readable label for a reason code; unknown codes stay numeric.

    Validation helper for traces and WIDS alert payloads: known codes
    render as their standard mnemonic, anything else (attacker-chosen
    garbage included) as ``reason-<n>`` so it is still greppable.
    """
    try:
        return ReasonCode(code).name
    except ValueError:
        return f"reason-{int(code)}"


class StatusCode(enum.IntEnum):
    SUCCESS = 0
    UNSPECIFIED_FAILURE = 1
    CHALLENGE_FAILURE = 15
    AUTH_TIMEOUT = 16
    ASSOC_DENIED_UNSPEC = 17


# Flag bits in the second FC byte.
_FLAG_TO_DS = 0x01
_FLAG_FROM_DS = 0x02
_FLAG_RETRY = 0x08
_FLAG_PROTECTED = 0x40

_MAC_HEADER = HeaderSpec(
    "802.11 MAC header", "<",
    u8("fc0"),
    u8("fc1"),
    u16("duration"),
    fixed_bytes("addr1", 6, enc=lambda m: m.bytes, dec=MacAddress),
    fixed_bytes("addr2", 6, enc=lambda m: m.bytes, dec=MacAddress),
    fixed_bytes("addr3", 6, enc=lambda m: m.bytes, dec=MacAddress),
    u16("seqctl"),
)


@dataclass
class Dot11Frame:
    """One 802.11 frame.

    ``addr1`` is the receiver, ``addr2`` the transmitter, ``addr3`` the
    BSSID (management / infrastructure-data usage).  ``body`` is the
    frame body *as transmitted*: for protected data frames that means
    the WEP-expanded ciphertext.
    """

    subtype: FrameSubtype
    addr1: MacAddress
    addr2: MacAddress
    addr3: MacAddress
    body: bytes = b""
    seq: int = 0
    frag: int = 0
    duration: int = 0
    protected: bool = False
    to_ds: bool = False
    from_ds: bool = False
    retry: bool = False
    #: Flight-recorder lineage id (repro.obs.lineage); assigned at first
    #: transmission while a recorder is installed.  Excluded from
    #: equality/repr: lineage annotation must never change frame
    #: semantics (the zero-perturbation contract).
    trace_id: Optional[int] = field(default=None, compare=False, repr=False)
    #: Per-instance encode cache, keyed on ``with_fcs``.  ``init=False``
    #: means :func:`dataclasses.replace` (and therefore
    #: :meth:`with_body`) produces a copy with a *cold* cache — that is
    #: the entire invalidation story, since wire fields are never
    #: mutated after construction (only ``trace_id`` is, and it is not
    #: serialized).
    _wire_cache: Optional[EncodeCache] = field(
        default=None, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------
    # identity helpers
    # ------------------------------------------------------------------
    @property
    def frame_type(self) -> FrameType:
        return self.subtype.frame_type

    @property
    def bssid(self) -> MacAddress:
        return self.addr3

    @property
    def destination(self) -> MacAddress:
        """Final destination (addr3 when to-DS, else addr1)."""
        return self.addr3 if self.to_ds and not self.from_ds else self.addr1

    @property
    def source(self) -> MacAddress:
        """Original source (addr3 when from-DS, else addr2)."""
        return self.addr3 if self.from_ds and not self.to_ds else self.addr2

    def is_management(self) -> bool:
        return self.frame_type is FrameType.MANAGEMENT

    def is_data(self) -> bool:
        return self.subtype is FrameSubtype.DATA

    def with_body(self, body: bytes, protected: Optional[bool] = None) -> "Dot11Frame":
        """Copy with a replaced body (used by WEP encap/decap)."""
        return replace(
            self,
            body=body,
            protected=self.protected if protected is None else protected,
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_bytes(self, with_fcs: bool = True) -> bytes:
        prof = active_profiler()
        if prof is None:
            return self._encode(with_fcs)
        with prof.span("codec.frame.encode"):
            return self._encode(with_fcs)

    def _encode(self, with_fcs: bool) -> bytes:
        cache = self._wire_cache
        if cache is None:
            cache = self._wire_cache = EncodeCache()
        raw = cache.get(with_fcs)
        if raw is not None:
            return raw
        m = obs_metrics()
        if m is not None:
            m.incr("dot11.frames_encoded")
        fc0 = (self.frame_type.value << 2) | (self.subtype.subtype_bits << 4)
        fc1 = 0
        if self.to_ds:
            fc1 |= _FLAG_TO_DS
        if self.from_ds:
            fc1 |= _FLAG_FROM_DS
        if self.retry:
            fc1 |= _FLAG_RETRY
        if self.protected:
            fc1 |= _FLAG_PROTECTED
        raw = _MAC_HEADER.pack(
            fc0=fc0,
            fc1=fc1,
            duration=self.duration & 0xFFFF,
            addr1=self.addr1,
            addr2=self.addr2,
            addr3=self.addr3,
            seqctl=((self.seq & 0x0FFF) << 4) | (self.frag & 0x0F),
        ) + self.body
        if with_fcs:
            raw += crc32(raw).to_bytes(4, "little")
        rec = flight_recorder()
        if rec is not None and self.trace_id is not None:
            rec.hop("dot11", "encode", trace_id=self.trace_id,
                    bytes=len(raw), subtype=self.subtype.name)
        return cache.put(with_fcs, raw)

    @classmethod
    def from_bytes(cls, raw: "bytes | bytearray | memoryview",
                   with_fcs: bool = True) -> "Dot11Frame":
        prof = active_profiler()
        if prof is None:
            return cls._decode(raw, with_fcs)
        with prof.span("codec.frame.decode"):
            return cls._decode(raw, with_fcs)

    @classmethod
    def _decode(cls, raw: "bytes | bytearray | memoryview", with_fcs: bool) -> "Dot11Frame":
        m = obs_metrics()
        if m is not None:
            m.incr("dot11.frames_decoded")
        view = memoryview(raw)
        if with_fcs:
            if len(view) < HEADER_LEN + FCS_LEN:
                raise ProtocolError("frame too short")
            payload, fcs = view[:-FCS_LEN], view[-FCS_LEN:]
            if crc32(payload) != int.from_bytes(fcs, "little"):
                raise ProtocolError("FCS check failed (corrupted frame)")
        else:
            if len(view) < HEADER_LEN:
                raise ProtocolError("frame too short")
            payload = view
        fields = _MAC_HEADER.unpack(payload)
        fc0 = fields["fc0"]
        fc1 = fields["fc1"]
        ftype = (fc0 >> 2) & 0x3
        subtype_bits = (fc0 >> 4) & 0xF
        flat = subtype_bits if ftype == 0 else (ftype << 4) | subtype_bits
        try:
            subtype = FrameSubtype(flat)
        except ValueError as exc:
            raise ProtocolError(f"unsupported frame subtype {flat:#x}") from exc
        rec = flight_recorder()
        trace_id = None
        if rec is not None:
            # A frame re-parsed from sniffed bytes is the *same* frame:
            # inherit the lineage of the delivery being processed.
            trace_id = rec.current()
            if trace_id is not None:
                rec.hop("dot11", "decode", trace_id=trace_id,
                        bytes=len(view), subtype=subtype.name)
        seqctl = fields["seqctl"]
        return cls(
            subtype=subtype,
            addr1=fields["addr1"],
            addr2=fields["addr2"],
            addr3=fields["addr3"],
            body=bytes(payload[HEADER_LEN:]),
            seq=(seqctl >> 4) & 0x0FFF,
            frag=seqctl & 0x0F,
            duration=fields["duration"],
            protected=bool(fc1 & _FLAG_PROTECTED),
            to_ds=bool(fc1 & _FLAG_TO_DS),
            from_ds=bool(fc1 & _FLAG_FROM_DS),
            retry=bool(fc1 & _FLAG_RETRY),
            trace_id=trace_id,
        )

    def air_bytes(self) -> int:
        """On-air size, for airtime accounting."""
        return HEADER_LEN + len(self.body) + FCS_LEN

    # ------------------------------------------------------------------
    # management-body parsers
    # ------------------------------------------------------------------
    def parse_beacon(self) -> "BeaconInfo":
        """Parse a beacon or probe-response body."""
        if self.subtype not in (FrameSubtype.BEACON, FrameSubtype.PROBE_RESP):
            raise ProtocolError("not a beacon/probe-response frame")
        if len(self.body) < 12:
            raise ProtocolError("beacon body too short")
        timestamp, interval, capability = struct.unpack("<QHH", self.body[:12])
        ies = parse_ies(self.body[12:])
        ssid = find_ie(ies, IeId.SSID)
        ds = find_ie(ies, IeId.DS_PARAMETER)
        rsn = find_ie(ies, IeId.RSN)
        csa = find_ie(ies, IeId.CHANNEL_SWITCH)
        return BeaconInfo(
            timestamp=timestamp,
            interval_tu=interval,
            capability=capability,
            ssid=ssid.data.decode("utf-8", "replace") if ssid else "",
            channel=ds.data[0] if ds and ds.data else 0,
            bssid=self.addr3,
            rsn=rsn.data if rsn else None,
            csa=csa.data if csa else None,
        )

    def parse_auth(self) -> tuple[int, int, int, Optional[bytes]]:
        """Return (algorithm, transaction seq, status, challenge or None)."""
        if self.subtype is not FrameSubtype.AUTH:
            raise ProtocolError("not an authentication frame")
        if len(self.body) < 6:
            raise ProtocolError("auth body too short")
        alg, txn, status = struct.unpack("<HHH", self.body[:6])
        challenge = None
        if len(self.body) > 6:
            ch = find_ie(parse_ies(self.body[6:]), IeId.CHALLENGE_TEXT)
            challenge = ch.data if ch else None
        return alg, txn, status, challenge

    def parse_assoc_request(self) -> tuple[int, str]:
        """Return (capability, requested ssid)."""
        if self.subtype is not FrameSubtype.ASSOC_REQ:
            raise ProtocolError("not an association request")
        if len(self.body) < 4:
            raise ProtocolError("assoc-request body too short")
        capability, _listen = struct.unpack("<HH", self.body[:4])
        ssid = find_ie(parse_ies(self.body[4:]), IeId.SSID)
        return capability, ssid.data.decode("utf-8", "replace") if ssid else ""

    def parse_assoc_response(self) -> tuple[int, int, int]:
        """Return (capability, status, association id)."""
        if self.subtype is not FrameSubtype.ASSOC_RESP:
            raise ProtocolError("not an association response")
        if len(self.body) < 6:
            raise ProtocolError("assoc-response body too short")
        return struct.unpack("<HHH", self.body[:6])

    def parse_reason(self) -> int:
        """Reason code of a deauth/disassoc frame."""
        if self.subtype not in (FrameSubtype.DEAUTH, FrameSubtype.DISASSOC):
            raise ProtocolError("not a deauth/disassoc frame")
        if len(self.body) < 2:
            raise ProtocolError("reason body too short")
        return struct.unpack("<H", self.body[:2])[0]

    def parse_trailing_ies(self, offset: int) -> list:
        """IEs after a management body's fixed-field prefix.

        ``offset`` is the fixed-prefix length: 6 for auth, 4 for assoc
        request, 2 for deauth/disassoc (where 802.11w's MME rides).
        """
        if len(self.body) < offset:
            raise ProtocolError("management body shorter than fixed prefix")
        return parse_ies(self.body[offset:])


@dataclass(frozen=True)
class BeaconInfo:
    """Decoded beacon contents — everything a scanning client learns."""

    timestamp: int
    interval_tu: int
    capability: int
    ssid: str
    channel: int
    bssid: MacAddress
    #: Raw RSN IE body when the network advertises one (WPA2/WPA3);
    #: decoded on demand by ``repro.rsn`` (dot11 stays crypto-agnostic).
    rsn: Optional[bytes] = None
    #: Raw channel-switch-announcement IE body, when present.
    csa: Optional[bytes] = None

    @property
    def privacy(self) -> bool:
        """True when the network advertises WEP (the privacy bit)."""
        return bool(self.capability & CAP_PRIVACY)


# ----------------------------------------------------------------------
# frame constructors
# ----------------------------------------------------------------------

def make_beacon(
    bssid: MacAddress,
    ssid: str,
    channel: int,
    *,
    privacy: bool = False,
    interval_tu: int = 100,
    timestamp: int = 0,
    seq: int = 0,
    extra_ies: Optional[list[InformationElement]] = None,
) -> Dot11Frame:
    """A beacon frame, broadcast from the AP.

    Note what is *absent*: any authenticator of the network.  A rogue
    constructs a byte-identical beacon by copying these arguments.
    ``extra_ies`` (RSN, CSA, vendor blobs) append after the seed IEs;
    the default keeps the body byte-identical to the frozen goldens.
    """
    capability = CAP_ESS | (CAP_PRIVACY if privacy else 0)
    ies = [ssid_ie(ssid), rates_ie(), ds_param_ie(channel)]
    if extra_ies:
        ies.extend(extra_ies)
    body = struct.pack("<QHH", timestamp, interval_tu, capability) + pack_ies(ies)
    return Dot11Frame(
        subtype=FrameSubtype.BEACON,
        addr1=BROADCAST,
        addr2=bssid,
        addr3=bssid,
        body=body,
        seq=seq,
    )


def make_probe_request(src: MacAddress, ssid: str = "", seq: int = 0) -> Dot11Frame:
    """A probe request; empty SSID is the broadcast ("any network") probe."""
    body = pack_ies([ssid_ie(ssid), rates_ie()])
    return Dot11Frame(
        subtype=FrameSubtype.PROBE_REQ,
        addr1=BROADCAST,
        addr2=src,
        addr3=BROADCAST,
        body=body,
        seq=seq,
    )


def make_probe_response(
    bssid: MacAddress,
    dest: MacAddress,
    ssid: str,
    channel: int,
    *,
    privacy: bool = False,
    timestamp: int = 0,
    seq: int = 0,
    extra_ies: Optional[list[InformationElement]] = None,
) -> Dot11Frame:
    capability = CAP_ESS | (CAP_PRIVACY if privacy else 0)
    ies = [ssid_ie(ssid), rates_ie(), ds_param_ie(channel)]
    if extra_ies:
        ies.extend(extra_ies)
    body = struct.pack("<QHH", timestamp, 100, capability) + pack_ies(ies)
    return Dot11Frame(
        subtype=FrameSubtype.PROBE_RESP,
        addr1=dest,
        addr2=bssid,
        addr3=bssid,
        body=body,
        seq=seq,
    )


def make_auth(
    src: MacAddress,
    dest: MacAddress,
    bssid: MacAddress,
    *,
    algorithm: int = AuthAlgorithm.OPEN_SYSTEM,
    txn: int = 1,
    status: int = StatusCode.SUCCESS,
    challenge: Optional[bytes] = None,
    protected: bool = False,
    seq: int = 0,
    extra_ies: Optional[list[InformationElement]] = None,
) -> Dot11Frame:
    """An authentication frame (open-system, shared-key, or SAE).

    SAE commit/confirm payloads travel in ``extra_ies`` (a vendor
    container element); legacy parsers skip unknown elements, so the
    pre-RSN code paths never see them.
    """
    ies: list[InformationElement] = []
    if challenge is not None:
        ies.append(challenge_ie(challenge))
    if extra_ies:
        ies.extend(extra_ies)
    body = struct.pack("<HHH", algorithm, txn, status)
    if ies:
        body += pack_ies(ies)
    return Dot11Frame(
        subtype=FrameSubtype.AUTH,
        addr1=dest,
        addr2=src,
        addr3=bssid,
        body=body,
        protected=protected,
        seq=seq,
    )


def make_assoc_request(
    src: MacAddress,
    bssid: MacAddress,
    ssid: str,
    *,
    privacy: bool = False,
    seq: int = 0,
    extra_ies: Optional[list[InformationElement]] = None,
) -> Dot11Frame:
    capability = CAP_ESS | (CAP_PRIVACY if privacy else 0)
    ies = [ssid_ie(ssid), rates_ie()]
    if extra_ies:
        ies.extend(extra_ies)
    body = struct.pack("<HH", capability, 10) + pack_ies(ies)
    return Dot11Frame(
        subtype=FrameSubtype.ASSOC_REQ,
        addr1=bssid,
        addr2=src,
        addr3=bssid,
        body=body,
        seq=seq,
    )


def make_assoc_response(
    bssid: MacAddress,
    dest: MacAddress,
    *,
    status: int = StatusCode.SUCCESS,
    aid: int = 1,
    privacy: bool = False,
    seq: int = 0,
) -> Dot11Frame:
    capability = CAP_ESS | (CAP_PRIVACY if privacy else 0)
    body = struct.pack("<HHH", capability, status, aid | 0xC000) + pack_ies([rates_ie()])
    return Dot11Frame(
        subtype=FrameSubtype.ASSOC_RESP,
        addr1=dest,
        addr2=bssid,
        addr3=bssid,
        body=body,
        seq=seq,
    )


def make_deauth(
    src: MacAddress,
    dest: MacAddress,
    bssid: MacAddress,
    *,
    reason: int = ReasonCode.PREV_AUTH_EXPIRED,
    seq: int = 0,
    extra_ies: Optional[list[InformationElement]] = None,
) -> Dot11Frame:
    """A deauthentication frame.

    Unauthenticated and unencrypted in 802.11b/WEP — which is exactly
    why the paper's attacker "could force the client's disassociation
    from the legitimate AP" (§4) by forging these with the AP's
    addresses.  (802.11i later added "secure deauthentication", §2.2;
    a PMF AP appends its MME via ``extra_ies``.)
    """
    body = struct.pack("<H", int(reason))
    if extra_ies:
        body += pack_ies(extra_ies)
    return Dot11Frame(
        subtype=FrameSubtype.DEAUTH,
        addr1=dest,
        addr2=src,
        addr3=bssid,
        body=body,
        seq=seq,
    )


def make_disassoc(
    src: MacAddress,
    dest: MacAddress,
    bssid: MacAddress,
    *,
    reason: int = ReasonCode.INACTIVITY,
    seq: int = 0,
    extra_ies: Optional[list[InformationElement]] = None,
) -> Dot11Frame:
    body = struct.pack("<H", int(reason))
    if extra_ies:
        body += pack_ies(extra_ies)
    return Dot11Frame(
        subtype=FrameSubtype.DISASSOC,
        addr1=dest,
        addr2=src,
        addr3=bssid,
        body=body,
        seq=seq,
    )


def make_data(
    src: MacAddress,
    dest: MacAddress,
    bssid: MacAddress,
    payload: bytes,
    *,
    to_ds: bool = False,
    from_ds: bool = False,
    protected: bool = False,
    seq: int = 0,
) -> Dot11Frame:
    """An infrastructure data frame.

    For to-DS frames (station → AP): addr1 = BSSID, addr2 = station,
    addr3 = final destination.  For from-DS (AP → station): addr1 =
    station, addr2 = BSSID, addr3 = original source.
    """
    if to_ds and not from_ds:
        a1, a2, a3 = bssid, src, dest
    elif from_ds and not to_ds:
        a1, a2, a3 = dest, bssid, src
    else:
        a1, a2, a3 = dest, src, bssid
    return Dot11Frame(
        subtype=FrameSubtype.DATA,
        addr1=a1,
        addr2=a2,
        addr3=a3,
        body=payload,
        to_ds=to_ds,
        from_ds=from_ds,
        protected=protected,
        seq=seq,
    )


def make_ack(dest: MacAddress) -> Dot11Frame:
    """A control ACK (receiver address only on real air; we fill the rest)."""
    return Dot11Frame(
        subtype=FrameSubtype.ACK,
        addr1=dest,
        addr2=MacAddress(b"\x00" * 6),
        addr3=MacAddress(b"\x00" * 6),
    )
