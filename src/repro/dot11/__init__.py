"""802.11b MAC layer: addresses, frames, information elements, capture.

This package models the parts of 802.11 that the paper's attack and
defenses actually touch:

* management frames (beacon, probe, authentication, association,
  deauthentication, disassociation) with byte-level serialization —
  the rogue AP emits *protocol-perfect* beacons indistinguishable from
  the legitimate AP's, which is the heart of the "no mutual
  authentication" problem (§3.1);
* the WEP "protected" bit and encrypted frame bodies;
* per-transmitter sequence-control counters, because §2.3's
  recommended rogue detection "relies on monitoring 802.11b Sequence
  Control numbers";
* monitor-mode capture records for sniffers and detectors.
"""

from repro.dot11.capture import CapturedFrame, FrameCapture
from repro.dot11.channels import CHANNELS_11B, channel_rejection_db, channels_overlap
from repro.dot11.frames import (
    Dot11Frame,
    FrameSubtype,
    FrameType,
    make_ack,
    make_assoc_request,
    make_assoc_response,
    make_auth,
    make_beacon,
    make_data,
    make_deauth,
    make_disassoc,
    make_probe_request,
    make_probe_response,
)
from repro.dot11.ies import InformationElement, IeId, pack_ies, parse_ies
from repro.dot11.mac import BROADCAST, MacAddress
from repro.dot11.seqctl import SequenceCounter

__all__ = [
    "BROADCAST",
    "CHANNELS_11B",
    "CapturedFrame",
    "Dot11Frame",
    "FrameCapture",
    "FrameSubtype",
    "FrameType",
    "IeId",
    "InformationElement",
    "MacAddress",
    "SequenceCounter",
    "channel_rejection_db",
    "channels_overlap",
    "make_ack",
    "make_assoc_request",
    "make_assoc_response",
    "make_auth",
    "make_beacon",
    "make_data",
    "make_deauth",
    "make_disassoc",
    "make_probe_request",
    "make_probe_response",
    "pack_ies",
    "parse_ies",
]
