"""802.11b channelization (2.4 GHz ISM band).

Figure 1 of the paper places the legitimate AP on channel 1 and the
rogue on channel 6 — non-overlapping channels, so the rogue's own
client radio can stay associated to the real network while its master-
mode radio serves victims without self-interference.  The overlap
model here captures that: adjacent channels bleed into each other,
channels ≥ 5 apart do not.
"""

from __future__ import annotations

__all__ = [
    "CHANNELS_11B",
    "band_of",
    "channel_center_mhz",
    "channel_rejection_db",
    "channels_overlap",
]

# North-American 802.11b channels.
CHANNELS_11B = tuple(range(1, 12))

_BASE_MHZ = 2407  # channel n center = 2407 + 5n MHz (n = 1..13)
_CH14_MHZ = 2484


def band_of(channel: int) -> str:
    """Coarse band label for a channel number: ``2g4`` or ``5g``.

    Channels 1–14 are the 2.4 GHz ISM band (all this simulation's
    802.11b worlds); anything higher is treated as 5 GHz.  Used as the
    second half of the WIDS sharded-correlation routing key.
    """
    return "2g4" if channel <= 14 else "5g"


def channel_center_mhz(channel: int) -> int:
    """Center frequency of an 802.11b channel in MHz."""
    if channel == 14:
        return _CH14_MHZ
    if not 1 <= channel <= 13:
        raise ValueError(f"invalid 802.11b channel: {channel}")
    return _BASE_MHZ + 5 * channel


def channels_overlap(a: int, b: int) -> bool:
    """True if energy on channel ``a`` is visible on channel ``b``.

    802.11b signals are ~22 MHz wide on a 5 MHz channel grid, so
    channels closer than 5 apart overlap (hence the classic 1/6/11
    non-overlapping plan).
    """
    return abs(channel_center_mhz(a) - channel_center_mhz(b)) < 25


def channel_rejection_db(a: int, b: int) -> float:
    """Extra attenuation a receiver tuned to ``b`` sees for a signal on ``a``.

    0 dB co-channel, growing roughly linearly with separation; returns
    ``inf`` for non-overlapping channels (the receiver hears nothing).
    A coarse but standard piecewise model — the experiments only need
    "same channel: loud, adjacent: attenuated, far: silent".
    """
    sep_mhz = abs(channel_center_mhz(a) - channel_center_mhz(b))
    if sep_mhz == 0:
        return 0.0
    if sep_mhz >= 25:
        return float("inf")
    # ~2 dB of rejection per MHz of separation beyond the first 5.
    return max(0.0, (sep_mhz - 5) * 2.0) + 3.0
