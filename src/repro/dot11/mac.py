"""IEEE MAC addresses.

The paper leans on two MAC-address facts: addresses "can be changed
from their factory default" (defeating MAC filtering, §2.1) and a
rogue AP can advertise the *same* BSSID as the legitimate AP (Fig. 1
shows both APs as ``AA:BB:CC:DD``).  :class:`MacAddress` is therefore
just data — nothing in the simulator prevents two radios sharing one,
exactly as nothing in 802.11 does.
"""

from __future__ import annotations

from functools import total_ordering

__all__ = ["MacAddress", "BROADCAST"]


@total_ordering
class MacAddress:
    """An immutable 48-bit MAC address.

    Accepts 6 raw bytes or the usual colon-separated hex string.

    Examples
    --------
    >>> MacAddress("aa:bb:cc:dd:ee:ff").oui.hex()
    'aabbcc'
    >>> MacAddress(b"\\xff" * 6).is_broadcast
    True
    """

    __slots__ = ("_bytes",)

    def __init__(self, value: "bytes | str | MacAddress") -> None:
        if isinstance(value, MacAddress):
            raw = value._bytes
        elif isinstance(value, bytes):
            raw = value
        elif isinstance(value, str):
            parts = value.replace("-", ":").split(":")
            if len(parts) != 6:
                raise ValueError(f"malformed MAC address: {value!r}")
            raw = bytes(int(p, 16) for p in parts)
        else:
            raise TypeError(f"cannot build MacAddress from {type(value).__name__}")
        if len(raw) != 6:
            raise ValueError("MAC address must be 6 bytes")
        object.__setattr__(self, "_bytes", raw)

    # Frozen-ness: no __setattr__ via __slots__ + object.__setattr__ in init.
    def __setattr__(self, name: str, value) -> None:  # pragma: no cover
        raise AttributeError("MacAddress is immutable")

    @classmethod
    def random(cls, rng, oui: bytes = b"\x00\x02\x2d") -> "MacAddress":
        """A random address under ``oui`` (default: Agere/Lucent WaveLAN)."""
        if len(oui) != 3:
            raise ValueError("OUI must be 3 bytes")
        return cls(oui + rng.bytes(3))

    @property
    def bytes(self) -> bytes:
        return self._bytes

    @property
    def oui(self) -> bytes:
        """Vendor prefix (first 3 bytes)."""
        return self._bytes[:3]

    @property
    def is_broadcast(self) -> bool:
        return self._bytes == b"\xff" * 6

    @property
    def is_multicast(self) -> bool:
        return bool(self._bytes[0] & 0x01)

    @property
    def is_locally_administered(self) -> bool:
        """The U/L bit — often set by drivers when an address was overridden."""
        return bool(self._bytes[0] & 0x02)

    def __str__(self) -> str:
        return ":".join(f"{b:02x}" for b in self._bytes)

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MacAddress):
            return self._bytes == other._bytes
        if isinstance(other, bytes):
            return self._bytes == other
        return NotImplemented

    def __lt__(self, other: "MacAddress") -> bool:
        return self._bytes < other._bytes

    def __hash__(self) -> int:
        return hash(self._bytes)


BROADCAST = MacAddress(b"\xff" * 6)
