"""802.11 management-frame information elements (IEs).

Management frame bodies are a fixed-field prefix followed by a list of
TLV information elements.  The rogue AP's whole trick is that these
are *self-asserted*: the SSID element in its beacon says ``CORP``
because the attacker typed ``CORP``, and no element authenticates the
network (§3.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.sim.errors import ProtocolError
from repro.wire import pack_tlv, parse_tlv

__all__ = ["IeId", "InformationElement", "pack_ies", "parse_ies", "find_ie",
           "ssid_ie", "ds_param_ie", "rates_ie", "challenge_ie"]


class IeId(enum.IntEnum):
    """Element IDs used by the reproduction (subset of the standard)."""

    SSID = 0
    SUPPORTED_RATES = 1
    DS_PARAMETER = 3  # current channel
    TIM = 5
    CHALLENGE_TEXT = 16
    CHANNEL_SWITCH = 37  # CSA: "I am moving to channel N in M beacons"
    RSN = 48  # robust security network: ciphers, AKMs, PMF bits
    MME = 76  # management MIC element (802.11w protected deauth)
    VENDOR_SPECIFIC = 221  # OUI-scoped blobs (WPA v1 lived here)


@dataclass(frozen=True)
class InformationElement:
    """One TLV element: a 1-byte id, 1-byte length, and up to 255 bytes."""

    element_id: int
    data: bytes

    def __post_init__(self) -> None:
        if not 0 <= self.element_id <= 255:
            raise ProtocolError("IE id out of range")
        if len(self.data) > 255:
            raise ProtocolError("IE data longer than 255 bytes")

    def pack(self) -> bytes:
        return pack_tlv([(self.element_id, self.data)])


def pack_ies(ies: list[InformationElement]) -> bytes:
    """Serialize a list of IEs back-to-back."""
    return pack_tlv([(ie.element_id, ie.data) for ie in ies])


def parse_ies(data: Union[bytes, bytearray, memoryview]) -> list[InformationElement]:
    """Parse back-to-back TLVs; raises :class:`ProtocolError` on truncation."""
    return [InformationElement(eid, bytes(body))
            for eid, body in parse_tlv(data, label="IE")]


def find_ie(ies: list[InformationElement], element_id: int) -> InformationElement | None:
    """First IE with the given id, or None."""
    for ie in ies:
        if ie.element_id == element_id:
            return ie
    return None


# ----------------------------------------------------------------------
# typed constructors for the elements the reproduction uses
# ----------------------------------------------------------------------

def ssid_ie(ssid: str) -> InformationElement:
    """The (self-asserted, unauthenticated) network name."""
    raw = ssid.encode("utf-8")
    if len(raw) > 32:
        raise ProtocolError("SSID longer than 32 bytes")
    return InformationElement(IeId.SSID, raw)


def ds_param_ie(channel: int) -> InformationElement:
    """Current channel advertisement."""
    if not 1 <= channel <= 14:
        raise ProtocolError(f"invalid channel {channel}")
    return InformationElement(IeId.DS_PARAMETER, bytes([channel]))


def rates_ie(rates_mbps: tuple[float, ...] = (1.0, 2.0, 5.5, 11.0)) -> InformationElement:
    """Supported rates in the 500 kb/s encoding (basic-rate bit set)."""
    encoded = bytes((int(r * 2) | 0x80) & 0xFF for r in rates_mbps)
    return InformationElement(IeId.SUPPORTED_RATES, encoded)


def challenge_ie(challenge: bytes) -> InformationElement:
    """Shared-key authentication challenge text (128 bytes on real gear)."""
    return InformationElement(IeId.CHALLENGE_TEXT, challenge)
