"""802.11 sequence-control counters.

Every 802.11 transmitter stamps frames from a single, monotonically
increasing 12-bit sequence counter.  Paper §2.3: rogue-AP detection
techniques "rely on monitoring 802.11b Sequence Control numbers" —
two devices sharing one MAC/BSSID (a spoofer and the real AP) produce
*interleaved* counter streams that a monitor can tell apart, which is
also the basis of Wright's MAC-spoof detection (paper reference [15]).

:class:`SequenceCounter` is that counter; the detector lives in
:mod:`repro.defense.detection`.
"""

from __future__ import annotations

__all__ = ["SequenceCounter", "SEQ_MODULO"]

SEQ_MODULO = 4096  # 12-bit sequence number space


class SequenceCounter:
    """Per-transmitter 12-bit sequence number generator.

    Parameters
    ----------
    start:
        Initial value; real NICs start at an arbitrary point after
        power-up, so scenario code seeds this from the RNG.
    """

    def __init__(self, start: int = 0) -> None:
        self._next = start % SEQ_MODULO

    def next(self) -> int:
        """Return the current number and advance (wraps at 4096)."""
        value = self._next
        self._next = (self._next + 1) % SEQ_MODULO
        return value

    def peek(self) -> int:
        """The number the next frame will carry (monitor-side diagnostics)."""
        return self._next

    @staticmethod
    def gap(a: int, b: int) -> int:
        """Forward distance from sequence number ``a`` to ``b`` (mod 4096).

        A healthy single transmitter produces small positive gaps
        (usually 1, a bit more under retransmission); an interleaved
        second transmitter produces large, erratic gaps — the signal
        the §2.3 detector keys on.
        """
        return (b - a) % SEQ_MODULO
