"""802.11 sequence-control counters.

Every 802.11 transmitter stamps frames from a single, monotonically
increasing 12-bit sequence counter.  Paper §2.3: rogue-AP detection
techniques "rely on monitoring 802.11b Sequence Control numbers" —
two devices sharing one MAC/BSSID (a spoofer and the real AP) produce
*interleaved* counter streams that a monitor can tell apart, which is
also the basis of Wright's MAC-spoof detection (paper reference [15]).

:class:`SequenceCounter` is that counter; the detectors live in
:mod:`repro.wids.detectors`.  :class:`MirroredSequenceCounter` is the
evasion-side counter: an attacker radio that overhears the legitimate
transmitter and stamps its own frames as plausible successors, keeping
the merged stream's gaps small.
"""

from __future__ import annotations

__all__ = ["MirroredSequenceCounter", "SequenceCounter", "SEQ_MODULO"]

SEQ_MODULO = 4096  # 12-bit sequence number space


class SequenceCounter:
    """Per-transmitter 12-bit sequence number generator.

    Parameters
    ----------
    start:
        Initial value; real NICs start at an arbitrary point after
        power-up, so scenario code seeds this from the RNG.
    """

    def __init__(self, start: int = 0) -> None:
        self._next = start % SEQ_MODULO

    def next(self) -> int:
        """Return the current number and advance (wraps at 4096)."""
        value = self._next
        self._next = (self._next + 1) % SEQ_MODULO
        return value

    def peek(self) -> int:
        """The number the next frame will carry (monitor-side diagnostics)."""
        return self._next

    @staticmethod
    def gap(a: int, b: int) -> int:
        """Forward distance from sequence number ``a`` to ``b`` (mod 4096).

        A healthy single transmitter produces small positive gaps
        (usually 1, a bit more under retransmission); an interleaved
        second transmitter produces large, erratic gaps — the signal
        the §2.3 detector keys on.
        """
        return (b - a) % SEQ_MODULO


class MirroredSequenceCounter:
    """Seqctl-mirroring evasion: shadow the victim transmitter's counter.

    The arms-race response to sequence-control monitoring (the stealth
    techniques surveyed in the rogue-AP evasion literature): instead of
    stamping frames from an independent counter — whose interleaving
    with the cloned transmitter's stream produces the large gaps the
    monitor flags — the attacker *overhears* the legitimate station and
    stamps every injected frame as the successor of the last overheard
    number.  Merged-stream gaps collapse to 0 and 1, under the radar of
    any large-gap heuristic.  (Duplicate numbers remain: perfect
    mirroring is detectable in principle, just not by gap analysis —
    exactly the asymmetry the WIDS evaluation measures.)

    API-compatible with :class:`SequenceCounter` (``next``/``peek``)
    so it can be injected anywhere a real counter is used.
    """

    def __init__(self, start: int = 0) -> None:
        self._last_overheard = start % SEQ_MODULO

    def observe(self, seq: int) -> None:
        """Record a sequence number overheard from the mirrored victim."""
        self._last_overheard = seq % SEQ_MODULO

    def next(self) -> int:
        """Claim the successor of the last overheard number.

        Unlike a real counter this does not self-advance: with nothing
        new overheard, consecutive injected frames repeat the same
        plausible value rather than running ahead of the victim.
        """
        return (self._last_overheard + 1) % SEQ_MODULO

    def peek(self) -> int:
        return (self._last_overheard + 1) % SEQ_MODULO
