"""Monitor-mode frame capture.

"Wireless networks allow clients to sniff other people's packets"
(§1.1): any radio in range receives every frame, and a monitor-mode
NIC simply keeps them all.  :class:`FrameCapture` is the container the
sniffer, the Airsnort attacker, and the §2.3 detectors all consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.dot11.frames import Dot11Frame, FrameSubtype
from repro.dot11.mac import MacAddress

__all__ = ["CapturedFrame", "FrameCapture"]


@dataclass(frozen=True)
class CapturedFrame:
    """One overheard frame with radio metadata (time, channel, RSSI)."""

    time: float
    channel: int
    rssi_dbm: float
    frame: Dot11Frame

    @property
    def raw(self) -> bytes:
        return self.frame.to_bytes()


class FrameCapture:
    """An append-only capture buffer with pcap-style filtering.

    Examples
    --------
    ``cap.select(subtype=FrameSubtype.BEACON, bssid=ap_mac)`` yields all
    beacons claiming to be ``ap_mac`` — from the real AP *and* any
    rogue advertising the same BSSID.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.frames: list[CapturedFrame] = []
        self.capacity = capacity
        self._taps: list[Callable[[CapturedFrame], None]] = []

    def add(self, captured: CapturedFrame) -> None:
        self.frames.append(captured)
        if self.capacity is not None and len(self.frames) > self.capacity:
            # Evict the older half in one slice (amortised O(1) per add),
            # but always at least enough to satisfy the invariant
            # ``len(frames) <= capacity`` — with capacity=1 the old
            # ``capacity // 2`` evicted nothing and the buffer grew
            # without bound.
            drop = max(len(self.frames) - self.capacity, self.capacity // 2)
            del self.frames[:drop]
        for tap in self._taps:
            tap(captured)

    def tap(self, callback: Callable[[CapturedFrame], None]) -> Callable[[], None]:
        """Invoke ``callback`` for each new capture (live analysis)."""
        self._taps.append(callback)

        def remove() -> None:
            if callback in self._taps:
                self._taps.remove(callback)

        return remove

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self) -> Iterator[CapturedFrame]:
        return iter(self.frames)

    # ------------------------------------------------------------------
    # filters
    # ------------------------------------------------------------------
    def select(
        self,
        subtype: Optional[FrameSubtype] = None,
        transmitter: Optional[MacAddress] = None,
        receiver: Optional[MacAddress] = None,
        bssid: Optional[MacAddress] = None,
        protected: Optional[bool] = None,
        since: float = 0.0,
    ) -> Iterator[CapturedFrame]:
        for cap in self.frames:
            f = cap.frame
            if cap.time < since:
                continue
            if subtype is not None and f.subtype is not subtype:
                continue
            if transmitter is not None and f.addr2 != transmitter:
                continue
            if receiver is not None and f.addr1 != receiver:
                continue
            if bssid is not None and f.addr3 != bssid:
                continue
            if protected is not None and f.protected != protected:
                continue
            yield cap

    def count(self, **kw) -> int:
        return sum(1 for _ in self.select(**kw))

    def transmitters(self) -> set[MacAddress]:
        """Distinct transmitter addresses seen (site-survey primitive)."""
        return {cap.frame.addr2 for cap in self.frames}

    def ssids_advertised(self) -> dict[str, set[MacAddress]]:
        """Map SSID -> BSSIDs beaconing it.

        Two different *radios* beaconing one SSID is the first hint of
        a rogue; note the catch that a rogue cloning the BSSID too (as
        in Fig. 1) is invisible to this view — only sequence-number
        analysis (:mod:`repro.wids.detectors`) separates those.
        """
        out: dict[str, set[MacAddress]] = {}
        for cap in self.select(subtype=FrameSubtype.BEACON):
            info = cap.frame.parse_beacon()
            out.setdefault(info.ssid, set()).add(info.bssid)
        return out
