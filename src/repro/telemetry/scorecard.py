"""Latency / detection scorecards over a merged campaign registry.

A running ``serve`` campaign answers three operator questions: *how fast
are user sessions under this load*, *how hard is the WIDS firing*, and
*how long did the rogue survive before detection*.
:class:`LatencyScorecard` computes all three from any
:class:`~repro.obs.metrics.MetricsRegistry` — a live merged view, a
``CampaignResult.merged_metrics``, or a JSON-lines :func:`replay
<repro.telemetry.stream.replay>` — using only mergeable state, so the
scorecard of a merged registry is the scorecard of the campaign.

* ``p50/p95/p99`` come from the shared session-latency histogram via
  :meth:`HistogramMetric.quantile` (grouped-data interpolation, exact
  to bin resolution);
* ``alerts_per_s`` divides the merged alert counter by the campaign's
  simulated duration (a gauge every shard sets identically);
* ``time_to_detect_s`` is the *minimum* over shards of the first-alert
  gauge — min survives the gauge merge law, so the merged value is the
  earliest detection anywhere in the fleet.

:meth:`install` writes the scorecard back into a registry as
``telemetry.scorecard.*`` gauges, which is how the daemon publishes
live percentiles on ``/metrics`` without teaching Prometheus any
quantile math.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.report import format_kv
from repro.obs.metrics import HistogramMetric, MetricsRegistry
from repro.telemetry.sessions import LATENCY_METRIC

__all__ = ["LatencyScorecard"]

_QUANTILES = (0.50, 0.95, 0.99)


def _nan_to_none(x: float) -> Optional[float]:
    return None if x != x else x


@dataclass
class LatencyScorecard:
    """Point-in-time campaign health summary (all fields mergeable-safe)."""

    sessions_arrived: int
    sessions_completed: int
    sessions_failed: int
    sessions_shed: int
    sessions_compromised: int
    p50_latency_s: Optional[float]
    p95_latency_s: Optional[float]
    p99_latency_s: Optional[float]
    alerts_total: int
    alerts_per_s: Optional[float]
    time_to_detect_s: Optional[float]

    @classmethod
    def from_registry(cls, registry: MetricsRegistry) -> "LatencyScorecard":
        histogram = registry.get(LATENCY_METRIC)
        if isinstance(histogram, HistogramMetric) and histogram.total:
            p50, p95, p99 = (_nan_to_none(histogram.quantile(q))
                             for q in _QUANTILES)
        else:
            p50 = p95 = p99 = None
        alerts = registry.value("telemetry.alerts.emitted")
        duration = registry.get("telemetry.campaign.duration_s")
        alerts_per_s = None
        if duration is not None and duration.updates and duration.value:
            alerts_per_s = alerts / float(duration.value)
        first_alert = registry.get("telemetry.alerts.first_t_s")
        time_to_detect = None
        if first_alert is not None and first_alert.updates:
            # Merged min = earliest first-alert across all shards.
            time_to_detect = (first_alert.min
                              if math.isfinite(first_alert.min) else None)
        return cls(
            sessions_arrived=registry.value("telemetry.sessions.arrived"),
            sessions_completed=registry.value("telemetry.sessions.completed"),
            sessions_failed=registry.value("telemetry.sessions.failed"),
            sessions_shed=registry.value("telemetry.sessions.shed"),
            sessions_compromised=registry.value(
                "telemetry.sessions.compromised"),
            p50_latency_s=p50,
            p95_latency_s=p95,
            p99_latency_s=p99,
            alerts_total=alerts,
            alerts_per_s=alerts_per_s,
            time_to_detect_s=time_to_detect,
        )

    def to_json_dict(self) -> dict:
        """JSON-clean form, stable key order (dataclass field order)."""
        return {
            "sessions_arrived": self.sessions_arrived,
            "sessions_completed": self.sessions_completed,
            "sessions_failed": self.sessions_failed,
            "sessions_shed": self.sessions_shed,
            "sessions_compromised": self.sessions_compromised,
            "p50_latency_s": self.p50_latency_s,
            "p95_latency_s": self.p95_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "alerts_total": self.alerts_total,
            "alerts_per_s": self.alerts_per_s,
            "time_to_detect_s": self.time_to_detect_s,
        }

    def install(self, registry: MetricsRegistry) -> None:
        """Write the scorecard into ``registry`` as live gauges.

        Applied by the exporter to the *merged view* only, never to a
        shard's own registry — derived gauges must not feed back into
        the merge or they would double-derive.
        """
        for key, value in self.to_json_dict().items():
            if value is not None:
                registry.set_gauge(f"telemetry.scorecard.{key}", value)

    def report(self) -> str:
        """Human-readable block for the end-of-campaign console report."""
        def fmt(x: Optional[float]) -> str:
            return "n/a" if x is None else f"{x:.3f}"
        return format_kv("campaign scorecard", [
            ("sessions arrived", self.sessions_arrived),
            ("sessions completed", self.sessions_completed),
            ("sessions failed", self.sessions_failed),
            ("sessions shed", self.sessions_shed),
            ("sessions compromised", self.sessions_compromised),
            ("p50 latency (s)", fmt(self.p50_latency_s)),
            ("p95 latency (s)", fmt(self.p95_latency_s)),
            ("p99 latency (s)", fmt(self.p99_latency_s)),
            ("alerts", self.alerts_total),
            ("alerts / sim-s", fmt(self.alerts_per_s)),
            ("time to detect (s)", fmt(self.time_to_detect_s)),
        ])
