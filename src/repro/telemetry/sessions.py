"""Open-loop client-session generation: arrival rates, not trial counts.

The paper's experiments run a fixed victim through a fixed script.  A
production WLAN instead sees a *process* of users: laptops arrive,
associate (to whichever AP wins — legitimate or rogue), browse or
download, and leave, at a rate that does not care how the network is
coping.  :class:`OpenLoopSessions` drives exactly that against any
:class:`~repro.core.scenario.CorpScenario` world:

* arrivals are Poisson (exponential inter-arrival times from a dedicated
  RNG substream, so the generator never perturbs other consumers of the
  simulation stream);
* the load is **open-loop**: the next arrival is armed when the current
  one lands, never when a session finishes — a slow network gets *more*
  concurrency, not a gentler schedule (the Locust pattern the ROADMAP's
  telemetry item names);
* each session joins through the 802.11 state machine at a freshly
  drawn position, so a fraction of the population lands on the rogue AP
  and experiences the Fig. 2 MITM under load;
* everything observable lands in the ambient
  :class:`~repro.obs.metrics.MetricsRegistry` under ``telemetry.*`` —
  counters for the session funnel, a latency histogram for the
  percentile scorecards — and every metric obeys the fleet merge law.

Clients are pooled: a finished session returns its station to an idle
pool and the next arrival reuses it (same NIC, same IP, possibly moved)
rather than growing the world without bound.  When the pool is
exhausted and the address plan is full, the arrival is *shed* and
counted — open-loop load generators must measure the load they failed
to offer, or saturation looks like success.
"""

from __future__ import annotations

from typing import Optional

from repro.core.scenario import CorpScenario, GATEWAY_IP, TARGET_IP
from repro.hosts.station import Station
from repro.httpsim.browser import Browser
from repro.httpsim.client import HttpClient
from repro.obs.runtime import obs_metrics
from repro.radio.propagation import Position

__all__ = ["OpenLoopSessions", "LATENCY_METRIC", "LATENCY_BINS",
           "LATENCY_HI_S"]

#: The session-latency histogram: 0..LATENCY_HI_S seconds, LATENCY_BINS
#: bins.  Shared between the generator (writer) and the scorecard
#: (reader) so fleet merges never hit a binning mismatch.
LATENCY_METRIC = "telemetry.session.latency_s"
LATENCY_HI_S = 40.0
LATENCY_BINS = 160

#: Station IPs are allocated from 10.0.0.<_IP_FIRST>.. upward on the
#: /24 the corp gateway serves; the ceiling caps the client pool.
_IP_FIRST = 100
_IP_LAST = 250


class _Session:
    """One user's visit: arrival time, chosen activity, completion."""

    __slots__ = ("t_arrival", "kind", "station")

    def __init__(self, t_arrival: float, kind: str, station: Station) -> None:
        self.t_arrival = t_arrival
        self.kind = kind
        self.station = station


class OpenLoopSessions:
    """Poisson-arrival join/browse/download sessions over a corp world.

    Parameters
    ----------
    scenario:
        The world to offer load to (built by ``build_corp_scenario``;
        with or without a rogue).
    rate_per_s:
        Mean arrival rate, sessions per simulated second.
    max_sessions:
        Stop arming arrivals after this many (``None`` = unbounded; the
        campaign's duration bound then ends the load).
    download_fraction:
        Probability an arriving user runs the full §4.1
        download-verify-run flow instead of a single page view.
    max_clients:
        Ceiling on distinct pooled stations (bounded by the /24 address
        plan); arrivals beyond pool + plan capacity are shed.
    assoc_timeout_s:
        How long a joining station may scan/associate before the
        session counts as failed and the station is retired.
    """

    def __init__(self, scenario: CorpScenario, *, rate_per_s: float,
                 max_sessions: Optional[int] = None,
                 download_fraction: float = 0.2,
                 max_clients: int = 64,
                 assoc_timeout_s: float = 10.0) -> None:
        if rate_per_s <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate_per_s}")
        if not 0.0 <= download_fraction <= 1.0:
            raise ValueError("download_fraction must be in [0, 1]")
        self.scenario = scenario
        self.sim = scenario.sim
        self.rate_per_s = rate_per_s
        self.max_sessions = max_sessions
        self.download_fraction = download_fraction
        self.max_clients = min(max_clients, _IP_LAST - _IP_FIRST + 1)
        self.assoc_timeout_s = assoc_timeout_s
        self.rng = self.sim.rng.substream("telemetry.sessions")
        # Funnel counters (also mirrored into the ambient registry).
        self.arrived = 0
        self.started = 0
        self.completed = 0
        self.failed = 0
        self.shed = 0
        self.compromised = 0
        self.active = 0
        self.latency_sum_s = 0.0
        self._clients_created = 0
        self._idle: list[Station] = []
        self._stopped = False
        self._pending_arrival = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the first arrival (one inter-arrival gap from now)."""
        self._arm_next()

    def stop(self) -> None:
        """Stop offering load: cancel the armed arrival, keep sessions."""
        self._stopped = True
        if self._pending_arrival is not None:
            self._pending_arrival.cancel()
            self._pending_arrival = None

    # ------------------------------------------------------------------
    # the arrival process
    # ------------------------------------------------------------------
    def _arm_next(self) -> None:
        if self._stopped:
            return
        if self.max_sessions is not None and self.arrived >= self.max_sessions:
            return
        gap = self.rng.expovariate(self.rate_per_s)
        self._pending_arrival = self.sim.schedule(gap, self._arrive)

    def _arrive(self) -> None:
        self._pending_arrival = None
        self.arrived += 1
        self._arm_next()  # open loop: independent of session progress
        self._incr("telemetry.sessions.arrived")
        kind = ("download" if self.rng.random() < self.download_fraction
                else "browse")
        position = Position(self.rng.uniform(12.0, 55.0),
                            self.rng.uniform(-8.0, 8.0))
        station = self._checkout(position)
        if station is None:
            self.shed += 1
            self._incr("telemetry.sessions.shed")
            return
        session = _Session(self.sim.now, kind, station)
        self.started += 1
        self.active += 1
        self._incr("telemetry.sessions.started")
        self._gauge("telemetry.sessions.active", self.active)
        if station.wlan.associated:
            self._run_activity(session)
        else:
            self._await_association(session)

    # ------------------------------------------------------------------
    # the client pool
    # ------------------------------------------------------------------
    def _checkout(self, position: Position) -> Optional[Station]:
        if self._idle:
            station = self._idle.pop()
            station.move_to(position)
            return station
        if self._clients_created >= self.max_clients:
            return None
        k = self._clients_created
        self._clients_created += 1
        self._gauge("telemetry.clients.pooled", self._clients_created)
        station = Station(self.sim, f"client-{k}", self.scenario.medium,
                          position)
        station.connect("CORP", wep_key=self.scenario.wep,
                        ip=f"10.0.0.{_IP_FIRST + k}", gateway=GATEWAY_IP)
        return station

    def _checkin(self, station: Station) -> None:
        self._idle.append(station)

    # ------------------------------------------------------------------
    # one session
    # ------------------------------------------------------------------
    def _await_association(self, session: _Session) -> None:
        fired = {"done": False}

        def on_associated(_bssid, _channel) -> None:
            if fired["done"]:
                return
            fired["done"] = True
            session.station.wlan.on_associated = None
            self._run_activity(session)

        def on_timeout() -> None:
            if fired["done"]:
                return
            fired["done"] = True
            session.station.wlan.on_associated = None
            # Retired, not pooled: a station that cannot associate would
            # poison every future session handed to it.
            self._finish(session, ok=False, pool=False)

        session.station.wlan.on_associated = on_associated
        self.sim.schedule(self.assoc_timeout_s, on_timeout)

    def _run_activity(self, session: _Session) -> None:
        if session.kind == "download":
            browser = Browser(session.station)
            browser.download_and_run(
                f"http://{TARGET_IP}/download.html",
                on_done=lambda outcome: self._finish(
                    session, ok=not outcome.failed,
                    compromised=outcome.compromised))
        else:
            client = HttpClient(session.station)
            client.get(
                f"http://{TARGET_IP}/download.html",
                lambda response: self._finish(
                    session, ok=response is not None
                    and response.status == 200))

    def _finish(self, session: _Session, *, ok: bool,
                compromised: bool = False, pool: bool = True) -> None:
        self.active -= 1
        self._gauge("telemetry.sessions.active", self.active)
        latency = self.sim.now - session.t_arrival
        if ok:
            self.completed += 1
            self.latency_sum_s += latency
            self._incr("telemetry.sessions.completed")
            self._incr(f"telemetry.sessions.kind.{session.kind}")
            metrics = obs_metrics()
            if metrics is not None:
                metrics.observe(LATENCY_METRIC, latency, lo=0.0,
                                hi=LATENCY_HI_S, bins=LATENCY_BINS)
                metrics.add_time("telemetry.session.duration", latency)
        else:
            self.failed += 1
            self._incr("telemetry.sessions.failed")
        if compromised:
            self.compromised += 1
            self._incr("telemetry.sessions.compromised")
        if pool:
            self._checkin(session.station)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Deterministic funnel summary (the shard's trial value)."""
        return {
            "arrived": self.arrived,
            "started": self.started,
            "completed": self.completed,
            "failed": self.failed,
            "shed": self.shed,
            "compromised": self.compromised,
            "active": self.active,
            "clients": self._clients_created,
            "mean_latency_s": (self.latency_sum_s / self.completed
                               if self.completed else None),
        }

    # ------------------------------------------------------------------
    # ambient-registry helpers (no-ops when collection is off)
    # ------------------------------------------------------------------
    @staticmethod
    def _incr(name: str, by: int = 1) -> None:
        metrics = obs_metrics()
        if metrics is not None:
            metrics.incr(name, by)

    @staticmethod
    def _gauge(name: str, value: float) -> None:
        metrics = obs_metrics()
        if metrics is not None:
            metrics.set_gauge(name, value)
