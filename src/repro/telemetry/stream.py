"""Append-only JSON-lines telemetry stream, and its replay inverse.

The daemon's second sink (next to the Prometheus endpoint) is a plain
JSON-lines file: one self-describing JSON object per line, appended as
snapshots arrive, so any log shipper — or ``tail -f`` — can follow a
campaign live with zero dependencies.

Record kinds::

    {"kind": "meta", "version": 1, ...}                  # once, first line
    {"kind": "snapshot", "index": i, "seed": s, "seq": n,
     "metrics": {<MetricsRegistry.snapshot()>}}          # many, cumulative
    {"kind": "final", "metrics": {...}, "scorecard": {...},
     "summary": {...}}                                   # once, last line

Snapshots are **cumulative**, not deltas: each carries the shard's whole
registry at publish time.  That makes the stream self-healing (drop any
prefix of a shard's snapshots and nothing is lost but staleness) and
makes :func:`replay` trivial and exact — keep the *last* snapshot per
trial index and fold them in seed order through the registry merge law.
Because every shard's final publish equals its end-of-run registry
(see :mod:`repro.telemetry.shard`), a replayed stream reproduces the
in-process :meth:`CampaignResult.merged_metrics` view bit for bit; the
tests pin that equivalence.
"""

from __future__ import annotations

import io
import json
import threading
from typing import Dict, Iterator, Optional, Union

from repro.obs.metrics import MetricsRegistry

__all__ = ["JsonlWriter", "read_records", "replay"]


class JsonlWriter:
    """Append telemetry records to a line-buffered JSON-lines sink.

    Accepts a path (opened for append) or any text file object.  Writes
    are serialized under a lock and flushed per line so a concurrently
    tailing reader never sees a torn record.
    """

    def __init__(self, sink: Union[str, io.TextIOBase]) -> None:
        if isinstance(sink, str):
            self._file = open(sink, "a", encoding="utf-8")
            self._owns = True
        else:
            self._file = sink
            self._owns = False
        self._lock = threading.Lock()
        self._seq = 0

    def write_meta(self, **fields: object) -> None:
        self._write({"kind": "meta", "version": 1, **fields})

    def write_snapshot(self, index: int, seed: int, metrics: dict) -> None:
        record = {"kind": "snapshot", "index": index, "seed": seed,
                  "seq": self._seq, "metrics": metrics}
        self._write(record)

    def write_record(self, kind: str, **fields: object) -> None:
        """Append an arbitrary self-describing record.

        For stream extensions beyond the core meta/snapshot/final
        grammar — e.g. the arms-race campaign's per-``generation``
        records.  Unknown kinds are ignored by :func:`replay` (which
        folds snapshots only), so extensions never break the
        replay == merged-registry law.
        """
        if kind in ("meta", "snapshot", "final"):
            raise ValueError(f"use the dedicated writer for {kind!r}")
        self._write({"kind": kind, **fields})

    def write_final(self, metrics: dict, scorecard: Optional[dict] = None,
                    summary: Optional[dict] = None) -> None:
        record: dict = {"kind": "final", "metrics": metrics}
        if scorecard is not None:
            record["scorecard"] = scorecard
        if summary is not None:
            record["summary"] = summary
        self._write(record)

    def _write(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with self._lock:
            self._seq += 1
            self._file.write(line)
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if self._owns:
                self._file.close()

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_records(path: str) -> Iterator[dict]:
    """Yield every record in a stream file, validating line grammar."""
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: bad JSON: {exc}") from exc
            if not isinstance(record, dict) or "kind" not in record:
                raise ValueError(f"{path}:{lineno}: record without a kind")
            yield record


def replay(path: str) -> MetricsRegistry:
    """Rebuild the merged campaign registry from a stream file.

    Keeps the last (highest-``seq``) snapshot per trial index, then
    folds them in seed order — the same law
    :meth:`CampaignResult.merged_metrics` applies to in-process
    snapshots, so for a complete stream the result is identical.
    """
    latest: Dict[int, dict] = {}
    seeds: Dict[int, int] = {}
    for record in read_records(path):
        if record["kind"] != "snapshot":
            continue
        index = int(record["index"])
        latest[index] = record["metrics"]
        seeds[index] = int(record["seed"])
    merged = MetricsRegistry()
    for index in sorted(latest, key=lambda i: seeds[i]):
        merged.merge(MetricsRegistry.from_snapshot(latest[index]))
    return merged
