"""Prometheus text-exposition rendering for :mod:`repro.obs` registries.

Stdlib-only translation of a :class:`~repro.obs.metrics.MetricsRegistry`
(or its plain ``snapshot()`` dict) into the Prometheus text exposition
format, version 0.0.4 — the format every Prometheus server scrapes and
``promtool`` checks.  Naming rules, applied deterministically:

* every family is prefixed ``repro_`` and dotted metric names are
  flattened with ``_`` (``telemetry.sessions.completed`` →
  ``repro_telemetry_sessions_completed``); any character outside
  ``[a-zA-Z0-9_]`` sanitizes to ``_``;
* counters gain the conventional ``_total`` suffix;
* timers render as summaries in seconds: ``<name>_seconds_sum`` /
  ``<name>_seconds_count``;
* histograms render cumulative ``<name>_bucket{le="<edge>"}`` series
  (underflow folds into every finite bucket, since those observations
  are ``<= edge`` for all edges), a ``+Inf`` bucket equal to the total
  observation count, ``_count``, and a midpoint-estimated ``_sum``
  (the registry's histogram stores bins, not exact totals; the estimate
  is deterministic and documented here so dashboards know its nature);
* gauges that were never set are omitted (Prometheus has no "unset").

:func:`parse_exposition` is the matching strict reader used by tests
and the CI smoke job: it validates comment/sample line grammar, TYPE
declarations, and suffix discipline, and returns the samples so
assertions can check values — a self-contained stand-in for
``promtool check metrics``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple, Union

from repro.obs.metrics import MetricsRegistry

__all__ = ["render_exposition", "parse_exposition", "metric_family_name"]

_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$")
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>[^"]*)"$')


def metric_family_name(dotted: str, kind: str) -> str:
    """The exposition family name for a registry metric name."""
    base = "repro_" + _SANITIZE.sub("_", dotted)
    if kind == "counter":
        return base + "_total"
    if kind == "timer":
        return base + "_seconds"
    return base


def _fmt(value: float) -> str:
    """Float → exposition text (integers render without a decimal)."""
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _histogram_lines(family: str, data: dict, out: List[str]) -> None:
    lo, hi, bins = float(data["lo"]), float(data["hi"]), int(data["bins"])
    counts = data["counts"]
    underflow, overflow = int(data["underflow"]), int(data["overflow"])
    width = (hi - lo) / bins
    total = sum(counts) + underflow + overflow
    cumulative = underflow
    estimated_sum = underflow * lo + overflow * hi
    for i, c in enumerate(counts):
        cumulative += c
        edge = lo + (i + 1) * width
        estimated_sum += c * (lo + (i + 0.5) * width)
        out.append(f'{family}_bucket{{le="{_fmt(edge)}"}} {cumulative}')
    out.append(f'{family}_bucket{{le="+Inf"}} {total}')
    out.append(f"{family}_sum {_fmt(estimated_sum)}")
    out.append(f"{family}_count {total}")


def render_exposition(
        registry: Union[MetricsRegistry, dict]) -> str:
    """Render a registry (or its ``snapshot()`` dict) as exposition text.

    Output is deterministic: families appear in sorted registry-name
    order, one ``# HELP``/``# TYPE`` pair per family.
    """
    snapshot = (registry.snapshot()
                if isinstance(registry, MetricsRegistry) else registry)
    out: List[str] = []
    for dotted in sorted(snapshot):
        data = snapshot[dotted]
        kind = data["kind"]
        family = metric_family_name(dotted, kind)
        if kind == "counter":
            out.append(f"# HELP {family} Counter {dotted!r} from repro.obs.")
            out.append(f"# TYPE {family} counter")
            out.append(f"{family} {int(data['value'])}")
        elif kind == "gauge":
            if data.get("value") is None:
                continue  # never set: Prometheus has no unset gauge
            out.append(f"# HELP {family} Gauge {dotted!r} from repro.obs.")
            out.append(f"# TYPE {family} gauge")
            out.append(f"{family} {_fmt(float(data['value']))}")
        elif kind == "timer":
            out.append(f"# HELP {family} Timer {dotted!r} from repro.obs.")
            out.append(f"# TYPE {family} summary")
            out.append(f"{family}_sum {_fmt(float(data['total_s']))}")
            out.append(f"{family}_count {int(data['count'])}")
        elif kind == "histogram":
            out.append(f"# HELP {family} Histogram {dotted!r} from repro.obs.")
            out.append(f"# TYPE {family} histogram")
            _histogram_lines(family, data, out)
        else:
            raise ValueError(f"unknown metric kind {kind!r} for {dotted!r}")
    return "\n".join(out) + "\n" if out else ""


#: Sample-name suffixes each declared TYPE may emit (beyond the bare name).
_TYPE_SUFFIXES = {
    "counter": ("",),
    "gauge": ("",),
    "summary": ("_sum", "_count"),
    "histogram": ("_bucket", "_sum", "_count"),
}


def parse_exposition(text: str) -> Dict[str, dict]:
    """Strictly parse exposition text; raise ``ValueError`` on violations.

    Returns ``{family: {"type": str, "help": str, "samples":
    [(name, labels_dict, value), ...]}}``.  Checks the grammar of every
    line, that each sample belongs to a previously declared family with
    a legal suffix for its type, that histogram ``_bucket`` series are
    cumulative and end with ``+Inf`` equal to ``_count``, and that
    counter values are finite and non-negative.
    """
    families: Dict[str, dict] = {}
    order: List[str] = []  # declaration order, for suffix matching
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            raise ValueError(f"line {lineno}: blank line in exposition")
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4:
                raise ValueError(f"line {lineno}: malformed HELP")
            families.setdefault(
                parts[2], {"type": None, "help": None, "samples": []}
            )["help"] = parts[3]
            if parts[2] not in order:
                order.append(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in _TYPE_SUFFIXES:
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            family = families.setdefault(
                parts[2], {"type": None, "help": None, "samples": []})
            if family["type"] is not None:
                raise ValueError(f"line {lineno}: duplicate TYPE {parts[2]}")
            family["type"] = parts[3]
            if parts[2] not in order:
                order.append(parts[2])
            continue
        if line.startswith("#"):
            continue  # plain comment
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = match.group("name")
        labels: Dict[str, str] = {}
        if match.group("labels"):
            for pair in match.group("labels").split(","):
                lm = _LABEL.match(pair)
                if lm is None:
                    raise ValueError(f"line {lineno}: malformed label {pair!r}")
                labels[lm.group("key")] = lm.group("val")
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad sample value {match.group('value')!r}")
        owner = _owning_family(name, families, order)
        if owner is None:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE")
        families[owner]["samples"].append((name, labels, value))
        if families[owner]["type"] == "counter" and not value >= 0:
            raise ValueError(f"line {lineno}: negative counter {name!r}")
    for family, info in families.items():
        if info["type"] == "histogram":
            _check_histogram(family, info["samples"])
    return families


def _owning_family(sample_name: str, families: Dict[str, dict],
                   order: List[str]) -> Union[str, None]:
    # Longest declared family name wins, so repro_x_sum cannot be
    # claimed by a family repro_x declared after repro_x_sum's own.
    best = None
    for family in order:
        info = families[family]
        if info["type"] is None:
            continue
        for suffix in _TYPE_SUFFIXES[info["type"]]:
            if sample_name == family + suffix:
                if best is None or len(family) > len(best):
                    best = family
    return best


def _check_histogram(family: str,
                     samples: List[Tuple[str, dict, float]]) -> None:
    buckets = [(labels.get("le"), value) for name, labels, value in samples
               if name == family + "_bucket"]
    counts = [value for name, _labels, value in samples
              if name == family + "_count"]
    if not buckets or not counts:
        raise ValueError(f"histogram {family}: missing _bucket or _count")
    if buckets[-1][0] != "+Inf":
        raise ValueError(f"histogram {family}: last bucket must be +Inf")
    previous = 0.0
    for le, value in buckets:
        if le is None:
            raise ValueError(f"histogram {family}: bucket without le label")
        if value < previous:
            raise ValueError(f"histogram {family}: non-cumulative buckets")
        previous = value
    if buckets[-1][1] != counts[0]:
        raise ValueError(f"histogram {family}: +Inf bucket != _count")
