"""The campaign shard: one seed's slice-driven open-loop world.

:class:`OpenLoopShard` is the trial callable that ``python -m repro
serve`` hands to :func:`repro.fleet.run_campaign`.  Each shard builds
the Fig. 1 corporate world (rogue included unless disabled), arms the
§4.1 download MITM, watches the air with the WIDS, and offers
Poisson-arrival sessions via :class:`~repro.telemetry.sessions.
OpenLoopSessions` for ``duration_s`` simulated seconds.

**Slice-driven publishing.**  The shard never lets the exporter touch
the event loop.  It advances the simulator in fixed slices::

    while now < t_end:
        sim.run(until=min(now + snapshot_every_s, t_end))
        tick()          # registry writes + fleet_publish, between runs

``sim.run(until=...)`` composes exactly (the kernel's inclusive-``until``
contract), and the slicing schedule is *identical whether or not a
publisher is installed*, so exporter-on and exporter-off runs execute
the same event sequence bit for bit.  The determinism golden in
``tests/telemetry/test_daemon.py`` pins this.

**Replay equivalence.**  Snapshots are cumulative — each ``tick``
publishes the whole registry, not a delta — and the final publish is
the last registry-mutating act of the trial.  The last snapshot a
listener sees for a seed therefore equals the trial's own
``MetricsCollectingTrial`` snapshot, which is what makes the JSON-lines
stream replayable to the exact in-process merged view.

**Graceful stop.**  ``request_stop()`` raises a module-level flag that
every shard checks between slices; a stopping shard cancels arrivals,
drains in-flight sessions, and returns its summary as if the clock had
run out.  In-process (serial / daemon) campaigns observe the flag
directly; forked workers each inherit a copy at spawn, so parallel
serves additionally rely on the per-trial timeout for hard stops.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.core.scenario import build_corp_scenario
from repro.fleet.channel import fleet_publish
from repro.obs.runtime import obs_metrics
from repro.telemetry.sessions import OpenLoopSessions
from repro.wids.runtime import wids_watch

__all__ = ["OpenLoopShard", "clear_stop", "request_stop", "stop_requested"]

#: How long a shard keeps simulating after load stops, so in-flight
#: sessions can finish or time out (HttpClient's timeout is 30 s).
DRAIN_S = 35.0

_stop = threading.Event()


def request_stop() -> None:
    """Ask every in-process shard to drain and return early."""
    _stop.set()


def stop_requested() -> bool:
    return _stop.is_set()


def clear_stop() -> None:
    _stop.clear()


class OpenLoopShard:
    """Picklable trial: seed → open-loop campaign summary dict.

    Parameters mirror the ``serve`` CLI.  ``rate_per_s`` is *this
    shard's* share of the campaign rate; the CLI divides the requested
    total across shards.
    """

    def __init__(self, *, duration_s: float, rate_per_s: float,
                 max_sessions: Optional[int] = None,
                 download_fraction: float = 0.2,
                 max_clients: int = 64,
                 snapshot_every_s: float = 1.0,
                 with_rogue: bool = True) -> None:
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        if snapshot_every_s <= 0:
            raise ValueError(
                f"snapshot cadence must be positive, got {snapshot_every_s}")
        self.duration_s = duration_s
        self.rate_per_s = rate_per_s
        self.max_sessions = max_sessions
        self.download_fraction = download_fraction
        self.max_clients = max_clients
        self.snapshot_every_s = snapshot_every_s
        self.with_rogue = with_rogue

    def __call__(self, seed: int) -> dict:
        scenario = build_corp_scenario(seed, with_rogue=self.with_rogue)
        if scenario.rogue is not None:
            scenario.arm_download_mitm()
        sim = scenario.sim
        with wids_watch() as watch:
            gen = OpenLoopSessions(
                scenario, rate_per_s=self.rate_per_s,
                max_sessions=self.max_sessions,
                download_fraction=self.download_fraction,
                max_clients=self.max_clients)
            gen.start()
            t_end = sim.now + self.duration_s
            stopped = self._advance(sim, watch, t_end)
            gen.stop()
            # The drain ignores the stop flag: stopping means "offer no
            # more load", never "abandon in-flight users mid-session".
            self._advance(sim, watch, sim.now + DRAIN_S, heed_stop=False)
            self._tick(watch)  # final: ships the end-of-run registry
        summary = gen.summary()
        summary["stopped_early"] = stopped
        summary["alerts"] = len(watch.alerts())
        summary["frames_seen"] = watch.frames_seen()
        return summary

    # ------------------------------------------------------------------
    # the slice loop
    # ------------------------------------------------------------------
    def _advance(self, sim, watch, t_end: float, *,
                 heed_stop: bool = True) -> bool:
        """Run to ``t_end`` in snapshot-cadence slices; True if stopped.

        The slice boundaries depend only on ``sim.now``, the cadence and
        ``t_end`` — never on whether anyone is listening — so the event
        schedule is invariant under exporters (zero-perturbation).
        """
        while sim.now < t_end:
            if heed_stop and stop_requested():
                return True
            sim.run(until=min(sim.now + self.snapshot_every_s, t_end))
            self._tick(watch)
        return False

    def _tick(self, watch) -> None:
        """Fold WIDS state into the registry, then publish it upstream."""
        metrics = obs_metrics()
        if metrics is not None:
            alerts = watch.alerts()
            emitted = metrics.counter("telemetry.alerts.emitted")
            delta = len(alerts) - emitted.value
            if delta > 0:
                emitted.incr(delta)
            if alerts:
                metrics.set_gauge("telemetry.alerts.first_t_s", alerts[0].t)
            metrics.set_gauge("telemetry.campaign.duration_s",
                              self.duration_s)
            # Publish LAST: the shipped snapshot must contain every write
            # above, and on the final tick must equal the trial's own
            # end-of-run snapshot (the JSON-lines replay contract).
            fleet_publish(metrics.snapshot())
