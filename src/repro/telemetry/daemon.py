"""The campaign daemon: open-loop shards + live export on ``/metrics``.

:class:`CampaignDaemon` is what ``python -m repro serve`` runs.  It ties
every telemetry piece together:

* a :func:`repro.fleet.run_campaign` of
  :class:`~repro.telemetry.shard.OpenLoopShard` trials (one seed per
  shard, serial or process-parallel) with ``collect_metrics=True`` and
  an ``on_snapshot`` listener;
* a :class:`LiveStore` holding the latest cumulative snapshot per shard,
  merged on demand in seed order (the fleet merge law, applied live);
* a stdlib ``ThreadingHTTPServer`` exposing the merged view as
  Prometheus text on ``GET /metrics`` — with
  ``telemetry.scorecard.*`` gauges derived at scrape time — plus a
  ``GET /healthz`` liveness probe;
* an optional :class:`~repro.telemetry.stream.JsonlWriter` appending
  every snapshot (and the final merged view) to a JSON-lines file.

Threading model: the campaign runs on the calling thread (it is the
daemon's lifetime); the HTTP server serves from daemon threads that
only ever *read* the store under its lock.  Snapshot delivery —
``on_snapshot`` → store update + JSON-lines append — happens on the
campaign thread, so the simulation never waits on a scraper.

Shutdown: SIGINT/SIGTERM raise the shard stop flag
(:func:`repro.telemetry.shard.request_stop`), in-process shards drain
their in-flight sessions and return early, and the daemon finishes the
normal end-of-campaign path (final snapshot, scorecard, report).  A
second signal interrupts Python normally.
"""

from __future__ import annotations

import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.fleet import CampaignResult, run_campaign
from repro.obs.metrics import MetricsRegistry
from repro.telemetry.prometheus import render_exposition
from repro.telemetry.scorecard import LatencyScorecard
from repro.telemetry.shard import OpenLoopShard, clear_stop, request_stop
from repro.telemetry.stream import JsonlWriter

__all__ = ["CampaignDaemon", "LiveStore", "MetricsExporter"]


class LiveStore:
    """Thread-safe latest-snapshot-per-shard store with seed-order merge.

    Snapshots are cumulative, so "latest per shard, merged in seed
    order" is always a *consistent* campaign view — at worst a slice
    stale, never torn.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latest: Dict[int, Tuple[int, dict]] = {}  # index -> (seed, snap)

    def update(self, index: int, seed: int, snapshot: dict) -> None:
        with self._lock:
            self._latest[index] = (seed, snapshot)

    def merged(self) -> MetricsRegistry:
        with self._lock:
            items = sorted(self._latest.values())  # by seed
        merged = MetricsRegistry()
        for _seed, snapshot in items:
            merged.merge(MetricsRegistry.from_snapshot(snapshot))
        return merged

    def __len__(self) -> int:
        with self._lock:
            return len(self._latest)


class _ExportHandler(BaseHTTPRequestHandler):
    """``/metrics`` + ``/healthz``; everything else is 404."""

    # set per-server via functools-free subclassing in _start_server
    store: LiveStore

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        if self.path == "/healthz":
            self._respond(200, "ok\n", "text/plain; charset=utf-8")
            return
        if self.path != "/metrics":
            self._respond(404, "not found\n", "text/plain; charset=utf-8")
            return
        merged = self.store.merged()
        LatencyScorecard.from_registry(merged).install(merged)
        body = render_exposition(merged)
        self._respond(200, body, "text/plain; version=0.0.4; charset=utf-8")

    def _respond(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, fmt: str, *args: object) -> None:
        pass  # scrapes are not console events


class MetricsExporter:
    """A :class:`LiveStore` served live on ``/metrics`` + ``/healthz``.

    The HTTP half of the daemon, extracted so any campaign — the
    open-loop daemon, the WIDS arms race — can expose its merged
    registry to a Prometheus scraper: create (optionally around an
    existing store), :meth:`start`, feed ``store.update(...)``,
    :meth:`stop`.  Port ``0`` binds an ephemeral port, read back from
    :attr:`port` after :meth:`start`.
    """

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 store: Optional[LiveStore] = None) -> None:
        self.host = host
        self.port = port  # rebound to the real port once the server binds
        self.store = store if store is not None else LiveStore()
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "MetricsExporter":
        store = self.store

        class Handler(_ExportHandler):
            pass

        Handler.store = store
        self._server = ThreadingHTTPServer((self.host, self.port), Handler)
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-telemetry-http", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


class CampaignDaemon:
    """Run an open-loop campaign while exporting live telemetry.

    Parameters
    ----------
    shards:
        Number of trials (= seeds = worlds) in the campaign.
    shard:
        The configured :class:`OpenLoopShard` every trial runs.
    seed_base, workers, timeout:
        Passed through to :func:`run_campaign`.
    host, port:
        Bind address for the exporter; port ``0`` picks an ephemeral
        port (read it back from :attr:`port` or ``--port-file``).
    jsonl_path:
        When set, append meta/snapshot/final records there.
    linger_s:
        Keep serving ``/metrics`` for this long after the campaign
        finishes (CI scrapes after completion; operators ctrl-C out).
    """

    def __init__(self, *, shards: int, shard: OpenLoopShard,
                 seed_base: int = 1000, workers: int = 1,
                 timeout: Optional[float] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 jsonl_path: Optional[str] = None,
                 linger_s: float = 0.0) -> None:
        self.shards = shards
        self.shard = shard
        self.seed_base = seed_base
        self.workers = workers
        self.timeout = timeout
        self.host = host
        self.port = port  # rebound to the real port once the server binds
        self.jsonl_path = jsonl_path
        self.linger_s = linger_s
        self.store = LiveStore()
        self.snapshots_seen = 0
        self._exporter: Optional[MetricsExporter] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def run(self, *, install_signal_handlers: bool = True,
            on_ready=None) -> Tuple[CampaignResult, LatencyScorecard]:
        """Serve, run the campaign to completion, return its scorecard.

        ``on_ready(daemon)`` fires once the exporter socket is bound —
        the CLI uses it to print/record the chosen port before load
        starts.
        """
        clear_stop()
        previous_handlers = (
            self._install_signals() if install_signal_handlers else None)
        self._start_server()
        writer = JsonlWriter(self.jsonl_path) if self.jsonl_path else None
        try:
            if writer is not None:
                writer.write_meta(
                    shards=self.shards, seed_base=self.seed_base,
                    workers=self.workers,
                    rate_per_s=self.shard.rate_per_s,
                    duration_s=self.shard.duration_s,
                    snapshot_every_s=self.shard.snapshot_every_s)
            if on_ready is not None:
                on_ready(self)

            def deliver(index: int, snapshot: dict) -> None:
                seed = self.seed_base + index
                self.snapshots_seen += 1
                self.store.update(index, seed, snapshot)
                if writer is not None:
                    writer.write_snapshot(index, seed, snapshot)

            result = run_campaign(
                self.shards, self.shard, seed_base=self.seed_base,
                workers=self.workers, timeout=self.timeout,
                collect_metrics=True, on_snapshot=deliver)
            merged = result.merged_metrics or MetricsRegistry()
            scorecard = LatencyScorecard.from_registry(merged)
            if writer is not None:
                writer.write_final(merged.snapshot(),
                                   scorecard=scorecard.to_json_dict())
            self._linger()
            return result, scorecard
        finally:
            if writer is not None:
                writer.close()
            self._stop_server()
            if previous_handlers is not None:
                self._restore_signals(previous_handlers)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _install_signals(self) -> dict:
        previous = {}

        def on_signal(signum: int, _frame: object) -> None:
            request_stop()

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, on_signal)
            except (ValueError, OSError):  # pragma: no cover - non-main thread
                pass
        return previous

    @staticmethod
    def _restore_signals(previous: dict) -> None:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass

    def _start_server(self) -> None:
        self._exporter = MetricsExporter(
            host=self.host, port=self.port, store=self.store).start()
        self.port = self._exporter.port

    def _stop_server(self) -> None:
        if self._exporter is not None:
            self._exporter.stop()
            self._exporter = None

    def _linger(self) -> None:
        """Keep the exporter up post-campaign until timeout or stop."""
        from repro.telemetry.shard import stop_requested
        deadline = time.monotonic() + self.linger_s
        while time.monotonic() < deadline and not stop_requested():
            time.sleep(0.05)
