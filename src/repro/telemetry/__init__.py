"""Live campaign telemetry: open-loop load, streaming export, scorecards.

The paper reports end-of-run numbers; an operator defending a real WLAN
watches *live* ones.  This package turns the repository's batch
campaign engine (:mod:`repro.fleet`) into a long-running service:

* :mod:`~repro.telemetry.sessions` — Poisson-arrival, open-loop client
  sessions (join → browse/download) offered to the Fig. 1 world at a
  configured rate instead of a fixed trial count;
* :mod:`~repro.telemetry.shard` — the per-seed campaign trial that
  drives the simulator in snapshot-cadence slices and publishes
  cumulative :class:`~repro.obs.metrics.MetricsRegistry` snapshots
  through the fleet's worker→parent channel, without perturbing the
  simulation (exporter on/off is bit-identical);
* :mod:`~repro.telemetry.prometheus` — stdlib text-exposition
  rendering (and a strict parser used by tests/CI);
* :mod:`~repro.telemetry.stream` — append-only JSON-lines sink whose
  replay reproduces the in-process merged registry exactly;
* :mod:`~repro.telemetry.scorecard` — p50/p95/p99 session latency,
  alerts/s and time-to-detect, derived from mergeable state only;
* :mod:`~repro.telemetry.daemon` — the ``python -m repro serve``
  runtime tying it all together behind ``GET /metrics``.

DESIGN.md §14 describes the architecture and its invariants.
"""

from repro.telemetry.daemon import CampaignDaemon, LiveStore, MetricsExporter
from repro.telemetry.prometheus import parse_exposition, render_exposition
from repro.telemetry.scorecard import LatencyScorecard
from repro.telemetry.sessions import OpenLoopSessions
from repro.telemetry.shard import (OpenLoopShard, clear_stop, request_stop,
                                   stop_requested)
from repro.telemetry.stream import JsonlWriter, read_records, replay

__all__ = [
    "CampaignDaemon",
    "JsonlWriter",
    "LatencyScorecard",
    "LiveStore",
    "MetricsExporter",
    "OpenLoopSessions",
    "OpenLoopShard",
    "clear_stop",
    "parse_exposition",
    "read_records",
    "render_exposition",
    "replay",
    "request_stop",
    "stop_requested",
]
