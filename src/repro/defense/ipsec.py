"""An ESP-style UDP-transport tunnel.

The paper's §5.3 notes the PPP-over-SSH prototype's drawback — UDP
inside TCP — and its future work promises "a thorough evaluation of
VPN technologies".  This module is the natural comparator: an
IPsec-ESP-like tunnel over UDP (in the spirit of reference [13],
WAVEsec), where each inner packet rides one datagram.  Loss stays
loss: no head-of-line blocking, no meltdown — measured against the
TCP tunnel by E-VPNOH.

Keying is pre-shared (static SA), as small IPsec deployments of the
era actually ran.  Per-packet: sequence number, RC4 keystream seeded
per packet from (key, seq), HMAC-SHA1 truncated to 12 bytes (RFC 2404
style), replay window.
"""

from __future__ import annotations

import struct
from typing import Callable, Optional

from repro.crypto.hmac import constant_time_equal, hmac_sha1
from repro.crypto.rc4 import RC4
from repro.hosts.host import Host, UdpSocket
from repro.hosts.nic import TunInterface
from repro.netstack.addressing import IPv4Address, Network
from repro.netstack.ipv4 import IPv4Packet
from repro.netstack.routing import Route
from repro.sim.errors import ConfigurationError, ProtocolError

__all__ = ["EspTunnelClient", "EspTunnelServer", "esp_seal", "esp_open"]

ESP_PORT = 4500
TRUNC_MAC = 12


def _packet_key(key: bytes, seq: int) -> bytes:
    return key + struct.pack(">I", seq)


def esp_seal(enc_key: bytes, mac_key: bytes, seq: int, inner: bytes) -> bytes:
    """One ESP-ish datagram: ``seq(4) | ct | mac12``."""
    seq_bytes = struct.pack(">I", seq)
    ciphertext = RC4(_packet_key(enc_key, seq)).crypt(inner)
    mac = hmac_sha1(mac_key, seq_bytes + ciphertext)[:TRUNC_MAC]
    return seq_bytes + ciphertext + mac


def esp_open(enc_key: bytes, mac_key: bytes, datagram: bytes) -> Optional[tuple[int, bytes]]:
    """Verify/decrypt one datagram; None if forged or malformed."""
    if len(datagram) < 4 + TRUNC_MAC:
        return None
    seq_bytes, ciphertext, mac = (datagram[:4], datagram[4:-TRUNC_MAC],
                                  datagram[-TRUNC_MAC:])
    if not constant_time_equal(hmac_sha1(mac_key, seq_bytes + ciphertext)[:TRUNC_MAC], mac):
        return None
    (seq,) = struct.unpack(">I", seq_bytes)
    return seq, RC4(_packet_key(enc_key, seq)).crypt(ciphertext)


class _ReplayWindow:
    """Sliding anti-replay window (RFC 2401 §5-ish, window 64)."""

    SIZE = 64

    def __init__(self) -> None:
        self._top = -1
        self._mask = 0

    def accept(self, seq: int) -> bool:
        if seq > self._top:
            shift = seq - self._top
            self._mask = ((self._mask << shift) | 1) & ((1 << self.SIZE) - 1)
            self._top = seq
            return True
        offset = self._top - seq
        if offset >= self.SIZE:
            return False
        bit = 1 << offset
        if self._mask & bit:
            return False
        self._mask |= bit
        return True


class EspTunnelClient:
    """Client end: a TUN device whose packets ride UDP datagrams."""

    def __init__(self, host: Host, server_ip: "IPv4Address | str", psk: bytes,
                 *, inner_ip: "IPv4Address | str", server_inner_ip: "IPv4Address | str",
                 port: int = ESP_PORT, take_default: bool = True) -> None:
        self.host = host
        self.server_ip = IPv4Address(server_ip)
        self.port = port
        self.enc_key = psk + b"-enc"
        self.mac_key = psk + b"-mac"
        self.tun = TunInterface("esp0")
        host.add_interface(self.tun)
        self.tun.configure_p2p(inner_ip, server_inner_ip)
        self.tun.on_transmit = self._encapsulate
        self.sock: UdpSocket = host.udp_socket()
        self.sock.on_datagram = self._decapsulate
        self._seq = 0
        self._replay = _ReplayWindow()
        self.sent = 0
        self.received = 0
        self.dropped_integrity = 0
        # Routes: pin the server via the existing default, then take over.
        default = host.routing.lookup(self.server_ip)
        if default is None:
            raise ConfigurationError("no route to ESP server")
        host.routing.add_host(self.server_ip, default.interface, default.gateway)
        if take_default:
            for route in list(host.routing.routes()):
                if route.network.prefix_len == 0:
                    host.routing.remove(route.network)
            host.routing.add(Route(network=Network("0.0.0.0", 0), interface="esp0"))

    def _encapsulate(self, packet: IPv4Packet) -> None:
        self._seq += 1
        self.sent += 1
        datagram = esp_seal(self.enc_key, self.mac_key, self._seq, packet.to_bytes())
        self.sock.sendto(datagram, self.server_ip, self.port)

    def _decapsulate(self, payload: bytes, src_ip: IPv4Address, src_port: int) -> None:
        opened = esp_open(self.enc_key, self.mac_key, payload)
        if opened is None:
            self.dropped_integrity += 1
            return
        seq, inner = opened
        if not self._replay.accept(seq):
            return
        try:
            packet = IPv4Packet.from_bytes(inner)
        except ProtocolError:
            return
        self.received += 1
        self.tun.inject(packet)


class EspTunnelServer:
    """Server end: one static SA per client inner address."""

    def __init__(self, host: Host, psk: bytes, *,
                 server_inner_ip: "IPv4Address | str",
                 nat_ip: Optional["IPv4Address | str"] = None,
                 inner_network: Network = Network("10.9.0.0/24"),
                 port: int = ESP_PORT) -> None:
        self.host = host
        self.enc_key = psk + b"-enc"
        self.mac_key = psk + b"-mac"
        self.port = port
        host.ip_forward = True
        self.sock = host.udp_socket(port)
        self.sock.on_datagram = self._decapsulate
        self._peers: dict[IPv4Address, tuple[IPv4Address, int, TunInterface]] = {}
        self._replay: dict[IPv4Address, _ReplayWindow] = {}
        self._seq = 0
        self.server_inner_ip = IPv4Address(server_inner_ip)
        self.dropped_integrity = 0
        if nat_ip is not None:
            from repro.netstack.netfilter import Chain, Rule, TargetSnat
            host.netfilter.append(Chain.POSTROUTING, Rule(
                target=TargetSnat(IPv4Address(nat_ip)), src=inner_network))

    def _decapsulate(self, payload: bytes, src_ip: IPv4Address, src_port: int) -> None:
        opened = esp_open(self.enc_key, self.mac_key, payload)
        if opened is None:
            self.dropped_integrity += 1
            return
        seq, inner = opened
        try:
            packet = IPv4Packet.from_bytes(inner)
        except ProtocolError:
            return
        peer_inner = packet.src
        if peer_inner not in self._peers:
            tun = TunInterface(f"esps{len(self._peers)}")
            self.host.add_interface(tun)
            tun.configure_p2p(self.server_inner_ip, peer_inner)
            tun.on_transmit = lambda pkt, ip=src_ip, port=src_port: self._to_peer(pkt, ip, port)
            self._peers[peer_inner] = (src_ip, src_port, tun)
            self._replay[peer_inner] = _ReplayWindow()
        if not self._replay[peer_inner].accept(seq):
            return
        _, _, tun = self._peers[peer_inner]
        tun.inject(packet)

    def _to_peer(self, packet: IPv4Packet, outer_ip: IPv4Address, outer_port: int) -> None:
        self._seq += 1
        datagram = esp_seal(self.enc_key, self.mac_key, self._seq, packet.to_bytes())
        self.sock.sendto(datagram, outer_ip, outer_port)
