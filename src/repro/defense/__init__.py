"""Defenses: the paper's solution and the ones it finds wanting.

* :mod:`repro.defense.vpn` — the paper's actual solution (§5): tunnel
  *all* client traffic through PPP-over-SSH to a pre-arranged trusted
  endpoint on a wired network.
* :mod:`repro.defense.ipsec` — the UDP-transport alternative the
  paper's future work contemplates (reference [13], WAVEsec).
* :mod:`repro.defense.dot1x` / :mod:`repro.defense.wpa` — the
  link-layer mechanisms §2.2 shows are insufficient (no network
  authentication; shared PSK).
* :mod:`repro.wids` (re-exported here for compatibility) /
  :mod:`repro.defense.audit` — the §2.3 monitoring practices
  (sequence-control analysis, now the first detector of the WIDS
  registry, wired-side census, radio site survey).
* :mod:`repro.defense.policy` — the §5.2 VPN-requirements checklist.
"""

from repro.defense.audit import radio_site_survey, wired_side_census
from repro.defense.containment import ContainmentAction, ContainmentSensor
from repro.wids.detectors import SeqCtlMonitor, SpoofVerdict
from repro.defense.dot1x import Dot1xAuthenticator, Dot1xSupplicant, EapAuthServer
from repro.defense.ipsec import EspTunnelClient, EspTunnelServer
from repro.defense.pathcheck import PathCheckResult, check_first_hop
from repro.defense.policy import VpnRequirementReport, check_vpn_requirements
from repro.defense.vpn import VpnClient, VpnServer
from repro.defense.wpa import WpaPskAuthenticator, WpaPskSupplicant, derive_ptk

__all__ = [
    "ContainmentAction",
    "ContainmentSensor",
    "Dot1xAuthenticator",
    "Dot1xSupplicant",
    "EapAuthServer",
    "EspTunnelClient",
    "EspTunnelServer",
    "PathCheckResult",
    "SeqCtlMonitor",
    "SpoofVerdict",
    "VpnClient",
    "VpnRequirementReport",
    "VpnServer",
    "WpaPskAuthenticator",
    "WpaPskSupplicant",
    "check_first_hop",
    "check_vpn_requirements",
    "derive_ptk",
    "radio_site_survey",
    "wired_side_census",
]
