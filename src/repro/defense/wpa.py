"""WPA-PSK with TKIP (§2.2).

"802.1x and TKIP ... have been packaged into a new security solution
called WiFi Protected Access (WPA).  This interim solution addresses
client access to the network and WEP's previous vulnerabilities.
TKIP still relies on a pre shared key, thus is still vulnerable to
MITM attack from valid network clients."

The model: a 4-way-handshake-style exchange deriving a pairwise key
from the PSK and both nonces, MIC-protected; data protection via
:class:`repro.crypto.tkip.TkipSession`.  What E-8021X/WPA measures:

* an attacker *without* the PSK cannot complete the handshake — WPA
  really does fix WEP's key recovery and open rogue;
* any *valid client* has the PSK, so a rogue AP run by an insider (or
  anyone the key leaked to) completes the handshake perfectly — the
  quoted sentence above.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.crypto.hmac import constant_time_equal, hmac_sha1
from repro.crypto.sha1 import sha1
from repro.crypto.tkip import TkipSession
from repro.dot11.mac import MacAddress

__all__ = ["derive_ptk", "WpaPskAuthenticator", "WpaPskSupplicant", "psk_from_passphrase"]


# Key derivation lives in repro.crypto.wpa_kdf (shared with the link
# layer); re-exported here for the defense-facing API.
from repro.crypto.wpa_kdf import derive_ptk, psk_from_passphrase  # noqa: E402


@dataclass
class _Keys:
    kck: bytes      # handshake MIC key
    tk: bytes       # TKIP temporal key
    mic_tx: bytes   # Michael key, AP->STA
    mic_rx: bytes   # Michael key, STA->AP

    @classmethod
    def from_ptk(cls, ptk: bytes) -> "_Keys":
        return cls(kck=ptk[:16], tk=ptk[16:32], mic_tx=ptk[32:40], mic_rx=ptk[40:48])


class WpaPskAuthenticator:
    """AP side of the 4-way handshake."""

    def __init__(self, psk: bytes, ap_mac: MacAddress, rng) -> None:
        self.psk = psk
        self.ap_mac = ap_mac
        self._rng = rng
        self.handshakes_completed = 0
        self.mic_failures = 0

    def handshake(self, supplicant: "WpaPskSupplicant") -> Optional[tuple[TkipSession, TkipSession]]:
        """Run the exchange; returns (ap_tx_session, ap_rx_session) or None."""
        anonce = self._rng.bytes(32)
        # Message 1: ANonce (unprotected, as in the real protocol).
        snonce, mic2 = supplicant.msg1(anonce, self.ap_mac)
        ptk = derive_ptk(self.psk, anonce, snonce, self.ap_mac, supplicant.sta_mac)
        keys = _Keys.from_ptk(ptk)
        expected_mic2 = hmac_sha1(keys.kck, b"msg2" + snonce)
        if not constant_time_equal(mic2, expected_mic2):
            # Wrong PSK on the client (or an impostor without the key).
            self.mic_failures += 1
            return None
        # Message 3: confirm, MIC'd under the KCK.
        mic3 = hmac_sha1(keys.kck, b"msg3" + anonce)
        ok = supplicant.msg3(mic3)
        if not ok:
            self.mic_failures += 1
            return None
        self.handshakes_completed += 1
        ap_tx = TkipSession(keys.tk, keys.mic_tx, self.ap_mac.bytes)
        ap_rx = TkipSession(keys.tk, keys.mic_rx, supplicant.sta_mac.bytes)
        return ap_tx, ap_rx


class WpaPskSupplicant:
    """Client side of the 4-way handshake."""

    def __init__(self, psk: bytes, sta_mac: MacAddress, rng) -> None:
        self.psk = psk
        self.sta_mac = sta_mac
        self._rng = rng
        self._keys: Optional[_Keys] = None
        self._anonce: Optional[bytes] = None
        self.established = False
        self.mic_failures = 0

    def msg1(self, anonce: bytes, ap_mac: MacAddress) -> tuple[bytes, bytes]:
        """Receive ANonce; respond with SNonce + MIC (message 2)."""
        snonce = self._rng.bytes(32)
        ptk = derive_ptk(self.psk, anonce, snonce, ap_mac, self.sta_mac)
        self._keys = _Keys.from_ptk(ptk)
        self._anonce = anonce
        return snonce, hmac_sha1(self._keys.kck, b"msg2" + snonce)

    def msg3(self, mic3: bytes) -> bool:
        """Verify message 3 — the step that *does* authenticate the AP's
        key knowledge.  A rogue without the PSK fails here; a rogue
        *with* it (any valid client) passes."""
        assert self._keys is not None and self._anonce is not None
        expected = hmac_sha1(self._keys.kck, b"msg3" + self._anonce)
        if not constant_time_equal(mic3, expected):
            self.mic_failures += 1
            return False
        self.established = True
        return True

    def sessions(self, ap_mac: MacAddress) -> tuple[TkipSession, TkipSession]:
        """(sta_tx, sta_rx) TKIP sessions after a completed handshake."""
        assert self.established and self._keys is not None
        sta_tx = TkipSession(self._keys.tk, self._keys.mic_rx, self.sta_mac.bytes)
        sta_rx = TkipSession(self._keys.tk, self._keys.mic_tx, ap_mac.bytes)
        return sta_tx, sta_rx
