"""Hop-count anomaly detection — a client-side rogue check (§6 spirit).

The parprouted rogue is transparent at the ARP layer but not at the IP
layer: it *routes*, so it decrements TTL.  A client that believes its
gateway is one hop away can verify that belief with a TTL=1 echo
probe:

* clean network: the probe reaches the gateway and an ECHO_REPLY comes
  back from the gateway's address;
* through the rogue bridge: the probe's TTL expires *at the rogue*,
  which betrays itself with a TIME_EXCEEDED from its own IP address —
  the attacker's 10.0.0.24 appears in plain sight.

This is a detection the *victim* can run, unlike the §2.3
infrastructure-side monitors — and unlike them it needs no monitor
hardware.  Its limitation is equally honest: a smarter bridge could
suppress the ICMP error (the probe then just times out, which is
itself suspicious but not attributable), and it cannot see a
*hostile hotspot*, which legitimately is the first hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.hosts.host import Host
from repro.netstack.addressing import IPv4Address
from repro.netstack.icmp import IcmpType

__all__ = ["PathCheckResult", "check_first_hop"]


@dataclass
class PathCheckResult:
    """Outcome of one TTL=1 first-hop probe."""

    gateway_ip: IPv4Address
    responder_ip: Optional[IPv4Address] = None
    icmp_type: Optional[int] = None
    timed_out: bool = False

    @property
    def first_hop_is_gateway(self) -> bool:
        return (self.icmp_type == IcmpType.ECHO_REPLY
                and self.responder_ip == self.gateway_ip)

    @property
    def interloper(self) -> Optional[IPv4Address]:
        """The in-path device's address, if one revealed itself."""
        if self.icmp_type == IcmpType.TIME_EXCEEDED \
                and self.responder_ip != self.gateway_ip:
            return self.responder_ip
        return None

    @property
    def suspicious(self) -> bool:
        """Anything other than a clean one-hop gateway reply."""
        return not self.first_hop_is_gateway

    def describe(self) -> str:
        if self.first_hop_is_gateway:
            return f"clean: gateway {self.gateway_ip} is one hop away"
        if self.interloper is not None:
            return (f"ROGUE IN PATH: TTL=1 probe to {self.gateway_ip} died at "
                    f"{self.interloper} (an unexpected router)")
        if self.timed_out:
            return ("suspicious: first-hop probe unanswered (a silent "
                    "in-path device, or a lossy link)")
        return f"unexpected response {self.icmp_type} from {self.responder_ip}"


def check_first_hop(host: Host, gateway_ip: "IPv4Address | str",
                    on_result: Callable[[PathCheckResult], None],
                    *, timeout_s: float = 3.0) -> None:
    """Probe whether ``gateway_ip`` really is one hop away.

    Asynchronous: ``on_result`` fires with the :class:`PathCheckResult`
    when the probe resolves or times out.
    """
    gateway_ip = IPv4Address(gateway_ip)
    result = PathCheckResult(gateway_ip=gateway_ip)
    done = {"fired": False}

    def finish() -> None:
        if done["fired"]:
            return
        done["fired"] = True
        host.sim.trace.emit("pathcheck.result", host.name,
                            verdict=result.describe())
        on_result(result)

    def on_reply(rtt: float) -> None:
        result.responder_ip = gateway_ip
        result.icmp_type = int(IcmpType.ECHO_REPLY)
        finish()

    def on_error(responder: IPv4Address, icmp_type: int) -> None:
        result.responder_ip = responder
        result.icmp_type = icmp_type
        finish()

    def on_timeout() -> None:
        result.timed_out = True
        finish()

    host.ping(gateway_ip, on_reply, ttl=1, on_error=on_error)
    host.sim.schedule(timeout_s, on_timeout)
