"""Tombstone: ``repro.defense.detection`` was removed.

The §2.3 sequence-control analyser moved to :mod:`repro.wids.detectors`
in PR 4; this path spent five PRs as a ``DeprecationWarning`` re-export
shim and was retired in PR 10.  Importing it now fails loudly (below)
instead of silently aging further — the error names the new home so a
stale import is a one-line fix.
"""

raise ImportError(
    "repro.defense.detection was removed: SeqCtlMonitor and SpoofVerdict "
    "live in repro.wids.detectors (also re-exported by repro.defense and "
    "repro.wids). Update the import, e.g. "
    "`from repro.wids.detectors import SeqCtlMonitor, SpoofVerdict`."
)
