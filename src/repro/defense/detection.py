"""Deprecated location: sequence-control monitoring moved to the WIDS.

The §2.3 :class:`SeqCtlMonitor` now lives in
:mod:`repro.wids.detectors`, where it is the first entry of the
pluggable detector registry alongside its streaming counterpart
(:class:`repro.wids.detectors.SeqCtlAnomalyDetector`) and the rest of
the rogue-AP detector bank.

This module remains as a thin re-export shim so existing imports keep
working; new code should import from :mod:`repro.wids.detectors` (or
:mod:`repro.wids`) directly.
"""

from __future__ import annotations

import warnings

from repro.wids.detectors import SeqCtlMonitor, SpoofVerdict

__all__ = ["SeqCtlMonitor", "SpoofVerdict"]

warnings.warn(
    "repro.defense.detection is deprecated; import SeqCtlMonitor and "
    "SpoofVerdict from repro.wids.detectors instead",
    DeprecationWarning,
    stacklevel=2,
)
