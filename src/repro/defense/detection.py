"""Rogue-AP and MAC-spoof detection via sequence-control monitoring.

§2.3: "These techniques rely on monitoring 802.11b Sequence Control
numbers"; reference [15] is Wright's *Detecting Wireless LAN MAC
Address Spoofing*, whose core observation the monitor implements:

A single radio stamps frames from one monotonically increasing 12-bit
counter, so consecutive frames from a given transmitter address show
small forward gaps.  When a second radio transmits under the *same*
address (a rogue cloning the AP's BSSID, a deauth injector spoofing
the AP, a MAC-spoofing client), the merged stream shows large and
*backward-jumping* gaps that one radio cannot produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dot11.capture import FrameCapture
from repro.dot11.frames import FrameSubtype
from repro.dot11.mac import MacAddress
from repro.dot11.seqctl import SEQ_MODULO, SequenceCounter
from repro.obs.runtime import obs_metrics

__all__ = ["SeqCtlMonitor", "SpoofVerdict"]


@dataclass
class SpoofVerdict:
    """Analysis result for one transmitter address."""

    transmitter: MacAddress
    frames: int
    anomalies: int
    max_gap: int
    channels_seen: tuple[int, ...]
    spoofed: bool
    reason: str = ""

    @property
    def anomaly_rate(self) -> float:
        return self.anomalies / self.frames if self.frames else 0.0


class SeqCtlMonitor:
    """Offline/online analyser over a monitor-mode capture.

    Parameters
    ----------
    gap_threshold:
        Forward gaps above this count as anomalies.  Healthy single
        transmitters produce gaps of 1 (occasionally a handful under
        loss — the monitor misses frames too, so the threshold trades
        false positives against sensitivity: the E-DETECT ablation).
    anomaly_rate_threshold:
        Fraction of anomalous gaps above which the verdict is
        "spoofed".
    """

    def __init__(self, capture: FrameCapture, *, gap_threshold: int = 64,
                 anomaly_rate_threshold: float = 0.05) -> None:
        self.capture = capture
        self.gap_threshold = gap_threshold
        self.anomaly_rate_threshold = anomaly_rate_threshold

    def analyze_transmitter(self, mac: MacAddress) -> SpoofVerdict:
        """Sequence-gap analysis for all frames claiming transmitter ``mac``."""
        seqs: list[int] = []
        channels: set[int] = set()
        for cap in self.capture.select(transmitter=mac):
            # Control frames (ACK) carry no sequence number; skip them.
            if cap.frame.subtype is FrameSubtype.ACK:
                continue
            seqs.append(cap.frame.seq)
            # Multi-channel evidence only counts for AP-role frames:
            # scanning *clients* legitimately probe on every channel.
            if cap.frame.subtype in (FrameSubtype.BEACON, FrameSubtype.PROBE_RESP):
                channels.add(cap.channel)
        anomalies = 0
        max_gap = 0
        for prev, cur in zip(seqs, seqs[1:]):
            gap = SequenceCounter.gap(prev, cur)
            # gap==0 (duplicate, not retry-flagged) and huge gaps are anomalies.
            if gap == 0 or gap > self.gap_threshold:
                anomalies += 1
            if self.gap_threshold < gap < SEQ_MODULO:
                max_gap = max(max_gap, gap)
        rate = anomalies / max(1, len(seqs) - 1)
        multichannel = len(channels) > 1
        spoofed = False
        reason = ""
        if multichannel:
            spoofed = True
            reason = (f"one transmitter address beaconing on channels "
                      f"{sorted(channels)} — two radios")
        elif len(seqs) > 8 and rate >= self.anomaly_rate_threshold:
            spoofed = True
            reason = (f"interleaved sequence streams: {anomalies} anomalous "
                      f"gaps in {len(seqs)} frames")
        m = obs_metrics()
        if m is not None:
            m.incr("detect.analyses")
            m.incr("detect.anomalies", anomalies)
            if spoofed:
                m.incr("detect.flagged")
        return SpoofVerdict(
            transmitter=mac,
            frames=len(seqs),
            anomalies=anomalies,
            max_gap=max_gap,
            channels_seen=tuple(sorted(channels)),
            spoofed=spoofed,
            reason=reason,
        )

    def analyze_all(self) -> list[SpoofVerdict]:
        """Verdicts for every transmitter seen, flagged ones first."""
        verdicts = [self.analyze_transmitter(mac)
                    for mac in sorted(self.capture.transmitters())]
        verdicts.sort(key=lambda v: (not v.spoofed, str(v.transmitter)))
        return verdicts

    def flagged(self) -> list[SpoofVerdict]:
        return [v for v in self.analyze_all() if v.spoofed]
