"""Administrative audits (§2.3).

"Good record keeping and doing radio site audits will help detect
these rogues.  Depending on your deployment scenario, monitoring the
traffic on the wired LAN can also aid in detection of Rogue APs."

Two audits, with their §2.3-honest limitations:

* :func:`radio_site_survey` — walk the site with a monitor radio and
  compare the BSSes on the air against the authorized inventory.  A
  rogue cloning both SSID *and* BSSID is invisible here (Fig. 1's
  rogue!) unless it slipped onto an unauthorized channel.
* :func:`wired_side_census` — compare MAC addresses learned by the
  LAN switches against the asset inventory.  Catches rogue APs that
  are *plugged into* the LAN; the paper's parprouted rogue never
  appears because it bridges over the wireless side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dot11.capture import FrameCapture
from repro.dot11.frames import FrameSubtype
from repro.dot11.mac import MacAddress
from repro.netstack.ethernet import Switch

__all__ = ["AuthorizedAp", "SurveyFinding", "radio_site_survey", "wired_side_census"]


@dataclass(frozen=True)
class AuthorizedAp:
    """One entry in the administrator's AP inventory."""

    bssid: MacAddress
    ssid: str
    channel: int


@dataclass
class SurveyFinding:
    """One suspicious BSS from the site survey."""

    bssid: MacAddress
    ssid: str
    channel: int
    issue: str


def radio_site_survey(capture: FrameCapture,
                      inventory: list[AuthorizedAp]) -> list[SurveyFinding]:
    """Compare beacons on the air against the authorized inventory."""
    authorized = {(ap.bssid, ap.channel): ap for ap in inventory}
    known_bssids = {ap.bssid for ap in inventory}
    known_ssids = {ap.ssid for ap in inventory}
    findings: list[SurveyFinding] = []
    seen: set[tuple[MacAddress, int]] = set()
    for cap in capture.select(subtype=FrameSubtype.BEACON):
        info = cap.frame.parse_beacon()
        key = (info.bssid, cap.channel)
        if key in seen:
            continue
        seen.add(key)
        if key in authorized:
            continue
        if info.bssid in known_bssids:
            issue = (f"authorized BSSID beaconing on unauthorized channel "
                     f"{cap.channel} — cloned AP")
        elif info.ssid in known_ssids:
            issue = f"unknown BSSID advertising corporate SSID {info.ssid!r}"
        else:
            issue = "unknown BSS in the facility"
        findings.append(SurveyFinding(bssid=info.bssid, ssid=info.ssid,
                                      channel=cap.channel, issue=issue))
    return findings


def wired_side_census(switch: Switch,
                      inventory: list[MacAddress]) -> list[MacAddress]:
    """MAC addresses on the wired LAN that are not in the asset list.

    §2.3's wired-side monitoring.  Note its blind spot, which the FIG1
    scenario demonstrates: a parprouted rogue bridges frames with the
    *victim's* MAC (already inventoried) and never plugs its own
    hardware into the LAN.
    """
    known = set(inventory)
    return sorted(mac for mac in switch.mac_table() if mac not in known)
