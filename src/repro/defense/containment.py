"""Active rogue containment — the paper's §6 future work, built.

"Future work will likely include ... improving techniques of detecting
and countering attacks similar to the ones discussed here."

This module closes the detect→counter loop that later shipped in
commercial WIDS products: a monitor radio runs the §2.3
sequence-control analysis continuously; when a rogue BSS is confirmed,
the sensor *contains* it by injecting deauthentication frames into the
rogue's own BSS — the attacker's trick turned against him.  Clients
knocked off the rogue re-scan, accumulate selection penalty against
the rogue's (bssid, channel), and drift back to the legitimate AP.

Honest limitations, preserved faithfully:

* containment is itself unauthenticated deauth spoofing — it only
  works because 802.11b still lacks management-frame protection;
* it is an arms race: the rogue can out-shout the sensor;
* a VPN'd client (§5) never needed any of this — containment protects
  the unprotected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.attacks.sniffer import MonitorSniffer
from repro.wids.detectors import SeqCtlMonitor, SpoofVerdict
from repro.dot11.frames import BROADCAST, ReasonCode, make_deauth
from repro.dot11.mac import MacAddress
from repro.dot11.seqctl import SequenceCounter
from repro.radio.medium import Medium, RadioPort
from repro.radio.propagation import Position
from repro.sim.kernel import Simulator

__all__ = ["ContainmentSensor", "ContainmentAction"]


@dataclass
class ContainmentAction:
    """One containment decision the sensor took."""

    time: float
    bssid: MacAddress
    channel: int
    reason: str


class ContainmentSensor:
    """A WIDS sensor: monitor, detect (§2.3), contain (deauth the rogue).

    Parameters
    ----------
    authorized:
        (bssid, channel) pairs of the legitimate infrastructure.  A
        detected BSS on any *other* (bssid, channel) advertising an
        authorized BSSID — the Fig. 1 clone — is contained.
    check_interval_s:
        Detection sweep period.
    containment_rate_hz:
        Broadcast-deauth injection rate against a contained BSS.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        position: Position,
        *,
        authorized: list[tuple[MacAddress, int]],
        check_interval_s: float = 5.0,
        containment_rate_hz: float = 5.0,
        gap_threshold: int = 64,
        name: str = "wids-sensor",
    ) -> None:
        self.sim = sim
        self.authorized = set(authorized)
        self.check_interval_s = check_interval_s
        self.containment_rate_hz = containment_rate_hz
        self.sniffer = MonitorSniffer(sim, medium, position,
                                      name=f"{name}.monitor")
        self.monitor = SeqCtlMonitor(self.sniffer.capture,
                                     gap_threshold=gap_threshold)
        # A separate injection radio (sensors have one of each).
        self.injector = RadioPort(name=f"{name}.injector", position=position,
                                  channel=1, tx_power_dbm=18.0)
        medium.attach(self.injector)
        self._seq = SequenceCounter(sim.rng.substream(f"seq.{name}").randrange(0, 4096))
        self.actions: list[ContainmentAction] = []
        self._contained: dict[tuple[MacAddress, int], object] = {}
        self._stop_detect = None
        self.deauths_injected = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._stop_detect is None:
            self._stop_detect = self.sim.every(self.check_interval_s, self._sweep)

    def stop(self) -> None:
        if self._stop_detect is not None:
            self._stop_detect()
            self._stop_detect = None
        for stopper in self._contained.values():
            stopper()
        self._contained.clear()

    @property
    def containing(self) -> list[tuple[MacAddress, int]]:
        return sorted(self._contained, key=lambda k: (str(k[0]), k[1]))

    # ------------------------------------------------------------------
    # detect → contain
    # ------------------------------------------------------------------
    def _sweep(self) -> None:
        from repro.dot11.frames import FrameSubtype
        # Enumerate BSSes on the air: (bssid, channel) seen beaconing.
        seen: set[tuple[MacAddress, int]] = set()
        for cap in self.sniffer.capture.select(subtype=FrameSubtype.BEACON):
            seen.add((cap.frame.addr3, cap.channel))
        authorized_bssids = {b for b, _ in self.authorized}
        for key in seen:
            bssid, channel = key
            if key in self.authorized or key in self._contained:
                continue
            if bssid in authorized_bssids:
                reason = (f"authorized BSSID cloned on channel {channel} "
                          f"(Fig. 1 rogue)")
            else:
                verdict = self.monitor.analyze_transmitter(bssid)
                if not verdict.spoofed:
                    continue
                reason = verdict.reason
            self._contain(bssid, channel, reason)

    def _contain(self, bssid: MacAddress, channel: int, reason: str) -> None:
        self.actions.append(ContainmentAction(
            time=self.sim.now, bssid=bssid, channel=channel, reason=reason))
        self.sim.trace.emit("wids.contain", self.injector.name,
                            bssid=str(bssid), channel=channel, reason=reason)

        def inject() -> None:
            self.injector.channel = channel
            frame = make_deauth(bssid, BROADCAST, bssid,
                                reason=ReasonCode.UNSPECIFIED,
                                seq=self._seq.next())
            self.injector.transmit(frame)
            self.deauths_injected += 1

        stopper = self.sim.every(1.0 / self.containment_rate_hz, inject)
        self._contained[(bssid, channel)] = stopper
