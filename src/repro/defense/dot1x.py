"""802.1X port-based access control with EAP-MD5 (§2.2).

"This mechanism made modifications to the clients, APs and added an
authentication server ... in fact, it suffers from the same
fundamental flaw that 802.11b suffers from: there is no authentication
of the network."

The model captures exactly the trust structure the paper (and its
reference [9], Mishra & Arbaugh) criticize:

* the supplicant proves itself to the network via a CHAP-style MD5
  challenge;
* nothing proves the *network* to the supplicant — EAP-Success is an
  unauthenticated message the supplicant simply believes;
* therefore a rogue authenticator that skips verification entirely
  and emits EAP-Success is indistinguishable from a real one
  (E-8021X demonstrates it).

Messages travel over an abstract uncontrolled port (callables), which
in a deployment is the association link; the experiment concerns the
trust topology, not the framing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.crypto.md5 import md5

__all__ = ["EapAuthServer", "Dot1xAuthenticator", "Dot1xSupplicant", "EapCode"]


class EapCode(enum.IntEnum):
    REQUEST_IDENTITY = 1
    RESPONSE_IDENTITY = 2
    MD5_CHALLENGE = 3
    MD5_RESPONSE = 4
    SUCCESS = 5
    FAILURE = 6


@dataclass(frozen=True)
class EapMessage:
    code: EapCode
    ident: int = 0
    payload: bytes = b""


def chap_md5_response(ident: int, password: bytes, challenge: bytes) -> bytes:
    """RFC 1994 CHAP response: MD5(id || secret || challenge)."""
    return md5(bytes([ident & 0xFF]) + password + challenge)


class EapAuthServer:
    """The RADIUS-ish backend holding the user database."""

    def __init__(self, users: dict[str, bytes], rng) -> None:
        self.users = dict(users)
        self._rng = rng
        self._challenges: dict[int, tuple[str, bytes]] = {}
        self._next_ident = 1
        self.successes = 0
        self.failures = 0

    def begin(self, identity: str) -> Optional[EapMessage]:
        if identity not in self.users:
            self.failures += 1
            return EapMessage(EapCode.FAILURE)
        ident = self._next_ident
        self._next_ident += 1
        challenge = self._rng.bytes(16)
        self._challenges[ident] = (identity, challenge)
        return EapMessage(EapCode.MD5_CHALLENGE, ident, challenge)

    def verify(self, msg: EapMessage) -> EapMessage:
        entry = self._challenges.pop(msg.ident, None)
        if entry is None:
            self.failures += 1
            return EapMessage(EapCode.FAILURE)
        identity, challenge = entry
        expected = chap_md5_response(msg.ident, self.users[identity], challenge)
        if msg.payload == expected:
            self.successes += 1
            return EapMessage(EapCode.SUCCESS, msg.ident)
        self.failures += 1
        return EapMessage(EapCode.FAILURE, msg.ident)


class Dot1xAuthenticator:
    """The AP-side pass-through between supplicant and auth server.

    ``rogue=True`` models the attack: no server at all, everything is
    answered with EAP-Success.  The supplicant cannot tell.
    """

    def __init__(self, server: Optional[EapAuthServer], *, rogue: bool = False) -> None:
        if server is None and not rogue:
            raise ValueError("a legitimate authenticator needs an auth server")
        self.server = server
        self.rogue = rogue
        self.port_authorized_for: list[str] = []
        self.exchanges = 0

    def authenticate(self, supplicant: "Dot1xSupplicant") -> bool:
        """Run the EAP conversation; returns port-authorized."""
        self.exchanges += 1
        identity = supplicant.on_message(EapMessage(EapCode.REQUEST_IDENTITY))
        assert identity is not None and identity.code is EapCode.RESPONSE_IDENTITY
        name = identity.payload.decode("utf-8", "replace")
        if self.rogue:
            # The rogue happily "authenticates" anyone — and, bonus for
            # the attacker, it has now harvested the identity and could
            # harvest the challenge-response pair for offline attack.
            supplicant.on_message(EapMessage(EapCode.SUCCESS))
            self.port_authorized_for.append(name)
            return True
        challenge = self.server.begin(name)
        if challenge is None or challenge.code is EapCode.FAILURE:
            supplicant.on_message(EapMessage(EapCode.FAILURE))
            return False
        response = supplicant.on_message(challenge)
        if response is None:
            return False
        result = self.server.verify(response)
        supplicant.on_message(result)
        if result.code is EapCode.SUCCESS:
            self.port_authorized_for.append(name)
            return True
        return False


class Dot1xSupplicant:
    """The client side.  Note what it never checks: who it's talking to."""

    def __init__(self, identity: str, password: bytes) -> None:
        self.identity = identity
        self.password = password
        self.authenticated = False
        self.network_was_authenticated = False  # structurally impossible: stays False

    def on_message(self, msg: EapMessage) -> Optional[EapMessage]:
        if msg.code is EapCode.REQUEST_IDENTITY:
            return EapMessage(EapCode.RESPONSE_IDENTITY,
                              payload=self.identity.encode("utf-8"))
        if msg.code is EapCode.MD5_CHALLENGE:
            return EapMessage(
                EapCode.MD5_RESPONSE, msg.ident,
                chap_md5_response(msg.ident, self.password, msg.payload))
        if msg.code is EapCode.SUCCESS:
            # EAP-Success carries no authenticator; the supplicant
            # believes it from anyone (the paper's reference [9]).
            self.authenticated = True
            return None
        if msg.code is EapCode.FAILURE:
            self.authenticated = False
            return None
        return None
