"""PPP-over-SSH VPN — the paper's solution (§5).

"The solution to this problem is to require all traffic to pass
through a VPN to a trusted, secure, wired network. ... For testing
purposes we have utilized a PPP through SSH VPN as described in
Building Linux Virtual Private Networks."

Architecture, mirroring that book's recipe:

* an SSH-like encrypted transport over TCP (port 22): Diffie–Hellman
  key exchange **authenticated by a pre-established shared secret**
  (§5.2 requirements 1–2 — the client refuses endpoints it has no
  out-of-band credential for, so a rogue cannot substitute itself),
  RC4 record encryption, HMAC-SHA1 record integrity with replay
  protection;
* PPP framing inside the transport, carrying the client's IP packets;
* a ``ppp0`` TUN device on the client that *takes over the default
  route* (§5.2 requirement 4: "must handle all client traffic");
* a server on the trusted wired network (§5.2 requirement 3) that
  decapsulates, forwards, and NATs.

The §5.3 drawback is inherited faithfully: the transport is TCP, so
tunnelled UDP rides a reliable stream — E-VPNOH measures the damage.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Optional

from repro.crypto.dh import DH_GROUP_1536, DhGroup, DiffieHellman, derive_key
from repro.crypto.hmac import constant_time_equal, hmac_sha1
from repro.crypto.keystore import KeyStore
from repro.crypto.rc4 import RC4
from repro.crypto.sha1 import sha1
from repro.hosts.host import Host
from repro.hosts.nic import TunInterface
from repro.netstack.addressing import IPv4Address, Network
from repro.netstack.ipv4 import IPv4Packet
from repro.netstack.routing import Route
from repro.netstack.tcp import TcpConnection
from repro.obs.lineage import flight_recorder
from repro.obs.runtime import obs_metrics
from repro.sim.errors import ConfigurationError, ProtocolError

__all__ = ["VpnClient", "VpnServer", "SshRecordLayer"]

VPN_PORT = 22
MAC_LEN = 20
PPP_PROTO_IP = 0x0021

# Handshake/record message types.
_MSG_CLIENT_HELLO = 1
_MSG_SERVER_HELLO = 2
_MSG_CLIENT_AUTH = 3
_MSG_CONFIG = 4
_MSG_DATA = 5


def _frame(msg_type: int, payload: bytes) -> bytes:
    return struct.pack(">IB", len(payload) + 1, msg_type) + payload


class _FrameBuffer:
    """Reassemble length-prefixed frames from a TCP byte stream."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[tuple[int, bytes]]:
        self._buf.extend(data)
        frames = []
        while len(self._buf) >= 4:
            (length,) = struct.unpack_from(">I", self._buf, 0)
            if length < 1 or length > 1 << 20:
                raise ProtocolError("bad VPN frame length")
            if len(self._buf) < 4 + length:
                break
            msg_type = self._buf[4]
            payload = bytes(self._buf[5:4 + length])
            del self._buf[:4 + length]
            frames.append((msg_type, payload))
        return frames


class SshRecordLayer:
    """Encrypted, authenticated, replay-protected records (one direction pair)."""

    def __init__(self, enc_key: bytes, dec_key: bytes,
                 mac_tx_key: bytes, mac_rx_key: bytes) -> None:
        self._tx_cipher = RC4(enc_key)
        self._rx_cipher = RC4(dec_key)
        self._mac_tx_key = mac_tx_key
        self._mac_rx_key = mac_rx_key
        self._tx_seq = 0
        self._rx_seq = 0
        self.integrity_failures = 0
        self.replays_dropped = 0

    def seal(self, plaintext: bytes) -> bytes:
        m = obs_metrics()
        if m is not None:
            m.incr("vpn.records_sealed")
        seq = struct.pack(">I", self._tx_seq)
        self._tx_seq += 1
        ciphertext = self._tx_cipher.crypt(plaintext)
        mac = hmac_sha1(self._mac_tx_key, seq + ciphertext)
        return seq + ciphertext + mac

    def open(self, record: bytes) -> Optional[bytes]:
        """Verify and decrypt; None on tamper/replay (record dropped).

        Note the stream-cipher subtlety: RC4 state advances per record,
        so a dropped record would desynchronize.  The transport is TCP
        (reliable, ordered), so records only arrive intact and in
        order unless an on-path attacker modified them — in which case
        the session is torn down (as real SSH does on MAC failure).
        """
        m = obs_metrics()
        if len(record) < 4 + MAC_LEN:
            self.integrity_failures += 1
            if m is not None:
                m.incr("vpn.hmac_failures")
            return None
        seq_bytes, ciphertext, mac = record[:4], record[4:-MAC_LEN], record[-MAC_LEN:]
        if not constant_time_equal(hmac_sha1(self._mac_rx_key, seq_bytes + ciphertext), mac):
            self.integrity_failures += 1
            if m is not None:
                m.incr("vpn.hmac_failures")
            return None
        (seq,) = struct.unpack(">I", seq_bytes)
        if seq != self._rx_seq:
            self.replays_dropped += 1
            if m is not None:
                m.incr("vpn.replays_dropped")
            return None
        self._rx_seq += 1
        if m is not None:
            m.incr("vpn.records_opened")
        return self._rx_cipher.crypt(ciphertext)


def _derive_record_layer(shared: bytes, transcript: bytes, is_client: bool) -> SshRecordLayer:
    session_id = sha1(transcript)
    c2s_enc = derive_key(shared, "enc-c2s", 16, session_id)
    s2c_enc = derive_key(shared, "enc-s2c", 16, session_id)
    c2s_mac = derive_key(shared, "mac-c2s", 20, session_id)
    s2c_mac = derive_key(shared, "mac-s2c", 20, session_id)
    if is_client:
        return SshRecordLayer(c2s_enc, s2c_enc, c2s_mac, s2c_mac)
    return SshRecordLayer(s2c_enc, c2s_enc, s2c_mac, c2s_mac)


# ----------------------------------------------------------------------
# client
# ----------------------------------------------------------------------

class VpnClient:
    """The roaming client's end: SSH session + ppp0 + default route."""

    #: Delay before an auto-reconnect attempt after a torn-down session.
    RECONNECT_DELAY_S = 2.0

    def __init__(
        self,
        host: Host,
        keystore: KeyStore,
        server_name: str,
        server_ip: "IPv4Address | str",
        *,
        server_port: int = VPN_PORT,
        group: DhGroup = DH_GROUP_1536,
        mtu: int = 1400,
        auto_reconnect: bool = False,
    ) -> None:
        self.host = host
        self.keystore = keystore
        self.server_name = server_name
        self.server_ip = IPv4Address(server_ip)
        self.server_port = server_port
        self.group = group
        self.tun = TunInterface("ppp0", mtu=mtu)
        host.add_interface(self.tun)
        self.tun.on_transmit = self._tun_transmit
        self._conn: Optional[TcpConnection] = None
        self._records: Optional[SshRecordLayer] = None
        self._frames = _FrameBuffer()
        self._dh: Optional[DiffieHellman] = None
        self._psk: Optional[bytes] = None
        self._transcript = b""
        self.connected = False
        self.on_connected: Optional[Callable[[], None]] = None
        self._saved_defaults: list = []
        self.auto_reconnect = auto_reconnect
        self._want_connection = False
        self._reconnect_pending = False
        # counters
        self.packets_tunnelled = 0
        self.packets_received = 0
        self.reconnects = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def connect(self) -> None:
        """Open the tunnel.  Raises if no trustworthy credential exists —
        the §5.2 rule that VPN arrangements happen out of band."""
        self._want_connection = True
        self._frames = _FrameBuffer()
        if self._conn is not None:
            # Detach the stale transport so its late close events can't
            # tear down the session we are about to build.
            self._conn.on_data = None
            self._conn.on_close = None
            self._conn.on_reset = None
            self._conn = None
        cred = self.keystore.require(self.server_name, trusted_only=True)
        self._psk = cred.secret
        self._dh = DiffieHellman(self.group, self.host.sim.rng.substream(
            f"vpn.client.{self.host.name}"))
        # Pin the server route via the current default before we steal it.
        default = self.host.routing.lookup(self.server_ip)
        if default is None:
            raise ConfigurationError("no route to VPN server")
        self.host.routing.add_host(self.server_ip, default.interface, default.gateway)
        self._conn = self.host.tcp_connect(self.server_ip, self.server_port)
        self._conn.on_established = self._send_hello
        self._conn.on_data = self._on_tcp_data
        self._conn.on_close = self._on_transport_close
        self._conn.on_reset = self._on_transport_close

    def _send_hello(self) -> None:
        assert self._dh is not None
        name_raw = self.host.name.encode("utf-8")
        pub = self._dh.public.to_bytes((self.group.p.bit_length() + 7) // 8, "big")
        payload = struct.pack(">H", len(name_raw)) + name_raw + pub
        self._transcript = payload
        self._conn.send(_frame(_MSG_CLIENT_HELLO, payload))

    def _on_tcp_data(self, data: bytes) -> None:
        try:
            frames = self._frames.feed(data)
        except ProtocolError:
            self._fail()
            return
        for msg_type, payload in frames:
            self._handle_frame(msg_type, payload)

    def _handle_frame(self, msg_type: int, payload: bytes) -> None:
        if msg_type == _MSG_SERVER_HELLO and not self.connected:
            self._on_server_hello(payload)
        elif msg_type == _MSG_CONFIG and self._records is not None:
            self._on_config(payload)
        elif msg_type == _MSG_DATA and self._records is not None:
            self._on_data_record(payload)

    def _on_server_hello(self, payload: bytes) -> None:
        assert self._dh is not None and self._psk is not None
        pub_len = (self.group.p.bit_length() + 7) // 8
        if len(payload) < pub_len + MAC_LEN:
            self._fail()
            return
        server_pub = int.from_bytes(payload[:pub_len], "big")
        tag = payload[pub_len:pub_len + MAC_LEN]
        transcript = self._transcript + payload[:pub_len]
        expected = hmac_sha1(self._psk, b"server" + transcript)
        if not constant_time_equal(tag, expected):
            # An impostor endpoint (e.g. a rogue answering for the VPN
            # address) cannot produce this tag: no shared secret.
            self.host.sim.trace.emit("vpn.server_auth_failed", self.host.name,
                                     server=self.server_name)
            self._fail()
            return
        try:
            shared = self._dh.shared_secret(server_pub)
        except ValueError:
            self._fail()
            return
        self._records = _derive_record_layer(shared, transcript, is_client=True)
        client_tag = hmac_sha1(self._psk, b"client" + transcript)
        self._conn.send(_frame(_MSG_CLIENT_AUTH, client_tag))

    def _on_config(self, payload: bytes) -> None:
        plain = self._records.open(payload)
        if plain is None or len(plain) < 8:
            self._fail()
            return
        inner_ip = IPv4Address(plain[:4])
        peer_ip = IPv4Address(plain[4:8])
        self.tun.configure_p2p(inner_ip, peer_ip)
        self._take_default_route()
        self.connected = True
        self.host.sim.trace.emit("vpn.connected", self.host.name,
                                 inner_ip=str(inner_ip), server=self.server_name)
        if self.on_connected is not None:
            self.on_connected()

    def _take_default_route(self) -> None:
        """§5.2 requirement 4: *all* traffic into the tunnel."""
        default_net = Network("0.0.0.0", 0)
        for route in list(self.host.routing.routes()):
            if route.network.prefix_len == 0:
                self.host.routing.remove(route.network)
                self._saved_defaults.append(route)
        self.host.routing.add(Route(network=default_net, interface="ppp0"))

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def _tun_transmit(self, packet: IPv4Packet) -> None:
        if not self.connected or self._records is None or self._conn is None:
            return
        self.packets_tunnelled += 1
        rec = flight_recorder()
        if rec is not None and rec.current() is not None:
            rec.hop("vpn", "encap", host=self.host.name,
                    t=self.host.sim.now, dst=str(packet.dst),
                    bytes=len(packet.payload))
        ppp = struct.pack(">H", PPP_PROTO_IP) + packet.to_bytes()
        self._conn.send(_frame(_MSG_DATA, self._records.seal(ppp)))

    def _on_data_record(self, payload: bytes) -> None:
        plain = self._records.open(payload)
        if plain is None:
            self.host.sim.trace.emit("vpn.integrity_fail", self.host.name)
            self._fail()  # SSH semantics: MAC failure kills the session
            return
        if len(plain) < 2 or struct.unpack(">H", plain[:2])[0] != PPP_PROTO_IP:
            return
        try:
            packet = IPv4Packet.from_bytes(plain[2:])
        except ProtocolError:
            return
        self.packets_received += 1
        rec = flight_recorder()
        if rec is not None and rec.current() is not None:
            rec.hop("vpn", "decap", host=self.host.name,
                    t=self.host.sim.now, src=str(packet.src),
                    dst=str(packet.dst), bytes=len(packet.payload))
        self.tun.inject(packet)

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------

    def _fail(self) -> None:
        """Internal failure teardown: unlike :meth:`disconnect`, keeps
        the connection *intent* so auto-reconnect can retry."""
        if self._conn is not None:
            self._conn.close()
        self._on_transport_close()

    def disconnect(self) -> None:
        """Deliberate teardown; disables any auto-reconnect intent."""
        self._want_connection = False
        if self._conn is not None:
            self._conn.close()
        self._on_transport_close()

    def _on_transport_close(self) -> None:
        had_session = self.connected or self._records is not None
        self.connected = False
        self._records = None
        if had_session:
            # Fail closed: restore the pre-VPN default routes.  Note the
            # trade-off, documented rather than hidden — restoring a
            # direct default re-exposes traffic; a stricter policy would
            # blackhole instead.  Auto-reconnect re-tunnels promptly.
            self.host.routing.remove(Network("0.0.0.0", 0))
            for route in self._saved_defaults:
                self.host.routing.add(route)
            self._saved_defaults.clear()
            self.host.sim.trace.emit("vpn.disconnected", self.host.name)
        if (self.auto_reconnect and self._want_connection
                and not self._reconnect_pending):
            self._reconnect_pending = True
            self.host.sim.schedule(self.RECONNECT_DELAY_S, self._try_reconnect)

    def _try_reconnect(self) -> None:
        self._reconnect_pending = False
        if self.connected or not self._want_connection:
            return
        self.reconnects += 1
        self.host.sim.trace.emit("vpn.reconnect", self.host.name,
                                 attempt=self.reconnects)
        self.connect()

    @property
    def integrity_failures(self) -> int:
        return self._records.integrity_failures if self._records else 0


# ----------------------------------------------------------------------
# server
# ----------------------------------------------------------------------

@dataclass
class _Session:
    name: str
    conn: TcpConnection
    records: Optional[SshRecordLayer]
    frames: _FrameBuffer
    dh: DiffieHellman
    psk: Optional[bytes]
    transcript: bytes
    tun: Optional[TunInterface]
    inner_ip: Optional[IPv4Address]
    authed: bool = False


class VpnServer:
    """The trusted wired endpoint: terminates tunnels, forwards, NATs."""

    def __init__(
        self,
        host: Host,
        keystore: KeyStore,
        *,
        port: int = VPN_PORT,
        inner_network: Network = Network("10.8.0.0/24"),
        nat_ip: Optional["IPv4Address | str"] = None,
        group: DhGroup = DH_GROUP_1536,
    ) -> None:
        self.host = host
        self.keystore = keystore
        self.group = group
        self.inner_network = inner_network
        self._inner_iter = inner_network.hosts()
        self.server_inner_ip = next(self._inner_iter)
        host.ip_forward = True
        if nat_ip is not None:
            from repro.netstack.netfilter import Chain, Rule, TargetSnat
            host.netfilter.append(Chain.POSTROUTING, Rule(
                target=TargetSnat(IPv4Address(nat_ip)),
                src=inner_network,
            ))
        self.listener = host.tcp_listen(port, self._on_connection)
        self.sessions: list[_Session] = []
        self._tun_counter = 0
        self.auth_failures = 0

    def _on_connection(self, conn: TcpConnection) -> None:
        session = _Session(
            name="?", conn=conn, records=None, frames=_FrameBuffer(),
            dh=DiffieHellman(self.group, self.host.sim.rng.substream(
                f"vpn.server.{self.host.name}.{len(self.sessions)}")),
            psk=None, transcript=b"", tun=None, inner_ip=None,
        )
        self.sessions.append(session)
        conn.on_data = lambda data: self._on_tcp_data(session, data)
        conn.on_close = lambda: self._teardown(session)
        conn.on_reset = lambda: self._teardown(session)

    def _on_tcp_data(self, session: _Session, data: bytes) -> None:
        try:
            frames = session.frames.feed(data)
        except ProtocolError:
            session.conn.abort()
            return
        for msg_type, payload in frames:
            if msg_type == _MSG_CLIENT_HELLO and not session.authed:
                self._on_client_hello(session, payload)
            elif msg_type == _MSG_CLIENT_AUTH and not session.authed:
                self._on_client_auth(session, payload)
            elif msg_type == _MSG_DATA and session.authed:
                self._on_data_record(session, payload)

    def _on_client_hello(self, session: _Session, payload: bytes) -> None:
        if len(payload) < 2:
            session.conn.abort()
            return
        (name_len,) = struct.unpack(">H", payload[:2])
        name = payload[2:2 + name_len].decode("utf-8", "replace")
        pub_len = (self.group.p.bit_length() + 7) // 8
        pub_raw = payload[2 + name_len:2 + name_len + pub_len]
        if len(pub_raw) != pub_len:
            session.conn.abort()
            return
        cred = self.keystore.lookup(name)
        if cred is None:
            self.auth_failures += 1
            session.conn.abort()
            return
        session.name = name
        session.psk = cred.secret
        client_pub = int.from_bytes(pub_raw, "big")
        my_pub = session.dh.public.to_bytes(pub_len, "big")
        session.transcript = payload + my_pub
        tag = hmac_sha1(session.psk, b"server" + session.transcript)
        session.conn.send(_frame(_MSG_SERVER_HELLO, my_pub + tag))
        try:
            shared = session.dh.shared_secret(client_pub)
        except ValueError:
            session.conn.abort()
            return
        session.records = _derive_record_layer(shared, session.transcript,
                                               is_client=False)

    def _on_client_auth(self, session: _Session, payload: bytes) -> None:
        if session.psk is None or session.records is None:
            session.conn.abort()
            return
        expected = hmac_sha1(session.psk, b"client" + session.transcript)
        if not constant_time_equal(payload, expected):
            self.auth_failures += 1
            self.host.sim.trace.emit("vpn.client_auth_failed", self.host.name,
                                     client=session.name)
            session.conn.abort()
            return
        session.authed = True
        # Allocate the inner address and the server-side interface.
        session.inner_ip = next(self._inner_iter)
        self._tun_counter += 1
        tun = TunInterface(f"ppp{self._tun_counter}")
        self.host.add_interface(tun)
        tun.configure_p2p(self.server_inner_ip, session.inner_ip)
        tun.on_transmit = lambda packet: self._to_client(session, packet)
        session.tun = tun
        config = session.inner_ip.bytes + self.server_inner_ip.bytes
        session.conn.send(_frame(_MSG_CONFIG, session.records.seal(config)))
        self.host.sim.trace.emit("vpn.session_up", self.host.name,
                                 client=session.name, inner=str(session.inner_ip))

    def _on_data_record(self, session: _Session, payload: bytes) -> None:
        plain = session.records.open(payload)
        if plain is None:
            self.host.sim.trace.emit("vpn.integrity_fail", self.host.name,
                                     client=session.name)
            session.conn.abort()
            return
        if len(plain) < 2 or struct.unpack(">H", plain[:2])[0] != PPP_PROTO_IP:
            return
        try:
            packet = IPv4Packet.from_bytes(plain[2:])
        except ProtocolError:
            return
        if session.tun is not None:
            rec = flight_recorder()
            if rec is not None and rec.current() is not None:
                rec.hop("vpn", "decap", host=self.host.name,
                        t=self.host.sim.now, client=session.name,
                        src=str(packet.src), dst=str(packet.dst))
            session.tun.inject(packet)

    def _to_client(self, session: _Session, packet: IPv4Packet) -> None:
        if session.records is None:
            return
        rec = flight_recorder()
        if rec is not None and rec.current() is not None:
            rec.hop("vpn", "encap", host=self.host.name,
                    t=self.host.sim.now, client=session.name,
                    dst=str(packet.dst), bytes=len(packet.payload))
        ppp = struct.pack(">H", PPP_PROTO_IP) + packet.to_bytes()
        session.conn.send(_frame(_MSG_DATA, session.records.seal(ppp)))

    def _teardown(self, session: _Session) -> None:
        if session in self.sessions:
            self.sessions.remove(session)
        if session.tun is not None and session.inner_ip is not None:
            self.host.routing.remove(Network(str(session.inner_ip), 32))

    def active_sessions(self) -> int:
        return len([s for s in self.sessions if s.authed])
