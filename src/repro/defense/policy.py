"""The §5.2 VPN-requirements checklist, as executable policy.

"The VPN must satisfy the following requirements:

1. Provided by trustworthy entity
2. Authentication information preestablished
3. VPN endpoint in secure wired network
4. Must handle all client traffic"

Plus §5.2.1's corollary: a hotspot's purchased SSL certificate is
*not* requirement 1 — "a guarantee of nothing more than that provider
having given the certificate authority several hundred dollars."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keystore import KeyStore
from repro.defense.vpn import VpnClient
from repro.netstack.addressing import IPv4Address

__all__ = ["VpnRequirementReport", "check_vpn_requirements", "TRUSTED_ENDPOINT_KINDS"]

#: Endpoint placements that satisfy requirement 3.
TRUSTED_ENDPOINT_KINDS = ("corporate-wired", "home-isp-wired", "trusted-third-party-wired")


@dataclass(frozen=True)
class VpnRequirementReport:
    """Evaluation of one VPN configuration against §5.2."""

    trustworthy_provider: bool
    credentials_preestablished: bool
    endpoint_on_secure_wired_network: bool
    handles_all_traffic: bool
    notes: tuple[str, ...] = ()

    @property
    def satisfied(self) -> bool:
        return (self.trustworthy_provider
                and self.credentials_preestablished
                and self.endpoint_on_secure_wired_network
                and self.handles_all_traffic)

    def __str__(self) -> str:
        rows = [
            ("1. trustworthy provider", self.trustworthy_provider),
            ("2. credentials pre-established", self.credentials_preestablished),
            ("3. endpoint on secure wired net", self.endpoint_on_secure_wired_network),
            ("4. handles all client traffic", self.handles_all_traffic),
        ]
        lines = [f"  [{'x' if ok else ' '}] {label}" for label, ok in rows]
        lines.append(f"  => {'SATISFIED' if self.satisfied else 'NOT SATISFIED'}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def check_vpn_requirements(
    client: VpnClient,
    *,
    endpoint_kind: str,
    provider_known_reputation: bool = True,
) -> VpnRequirementReport:
    """Evaluate a client's VPN setup against the four §5.2 requirements."""
    notes: list[str] = []
    cred = client.keystore.lookup(client.server_name)

    # Requirement 2: pre-established, out-of-band credentials.
    pre = cred is not None and cred.trustworthy
    if cred is None:
        notes.append("no credential for the endpoint at all")
    elif not cred.trustworthy:
        notes.append(f"credential provenance {cred.provenance!r} was established "
                     "in-band — vulnerable at first contact (§5.2)")

    # Requirement 1: trustworthy provider.  A purchased certificate is not
    # reputation (§5.2.1).
    trustworthy = provider_known_reputation
    if cred is not None and cred.provenance == "purchased-cert" and not provider_known_reputation:
        notes.append("a valid, signed SSL certificate proves only a payment "
                     "to a certificate authority (§5.2.1)")

    # Requirement 3: endpoint placement.
    wired = endpoint_kind in TRUSTED_ENDPOINT_KINDS
    if not wired:
        notes.append(f"endpoint kind {endpoint_kind!r} is not a secure wired network")

    # Requirement 4: is the default route through the tunnel?  Probe
    # with an arbitrary external address.
    default = client.host.routing.lookup(IPv4Address("192.0.2.1"))
    all_traffic = (client.connected and default is not None
                   and default.interface == client.tun.name)
    if not all_traffic:
        notes.append("default route does not point into the tunnel — split "
                     "traffic is exposed on the wireless segment")

    return VpnRequirementReport(
        trustworthy_provider=trustworthy,
        credentials_preestablished=pre,
        endpoint_on_secure_wired_network=wired,
        handles_all_traffic=all_traffic,
        notes=tuple(notes),
    )
