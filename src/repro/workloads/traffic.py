"""Traffic sources.

* :class:`CbrUdpStream` — constant-bit-rate UDP with per-packet
  latency bookkeeping: the probe traffic for the VPN-overhead sweep
  (§5.3's "any UDP traffic is subject to unnecessary retransmission").
* :class:`BulkTcpTransfer` — a timed bulk byte push for goodput
  measurements.
* :class:`WepTrafficPump` — background WEP data frames from a station,
  to feed Airsnort's weak-IV collection at a controlled rate.
"""

from __future__ import annotations

import struct
from typing import Callable, Optional

from repro.hosts.host import Host
from repro.netstack.addressing import IPv4Address
from repro.sim.errors import SocketError

__all__ = ["BulkTcpTransfer", "CbrUdpStream", "WepTrafficPump"]


class CbrUdpStream:
    """Constant-rate UDP sender + receiver-side latency collector.

    Each datagram carries (sequence, send timestamp).  The receiver end
    records delivery latency and duplicates, giving E-VPNOH its
    delivery-ratio and latency series.
    """

    def __init__(self, sender: Host, receiver: Host,
                 dst_ip: "IPv4Address | str", *, port: int = 9000,
                 rate_pps: float = 50.0, payload_size: int = 160) -> None:
        self.sender = sender
        self.receiver = receiver
        self.dst_ip = IPv4Address(dst_ip)
        self.port = port
        self.rate_pps = rate_pps
        self.payload_size = max(12, payload_size)
        self.tx_sock = sender.udp_socket()
        self.rx_sock = receiver.udp_socket(port)
        self.rx_sock.on_datagram = self._on_datagram
        self.sent = 0
        self.received = 0
        self.duplicates = 0
        self.latencies_s: list[float] = []
        self._seen: set[int] = set()
        self._stop: Optional[Callable[[], None]] = None

    def start(self, duration_s: Optional[float] = None) -> None:
        sim = self.sender.sim
        until = sim.now + duration_s if duration_s is not None else None
        self._stop = sim.every(1.0 / self.rate_pps, self._send_one, until=until)

    def stop(self) -> None:
        if self._stop is not None:
            self._stop()
            self._stop = None

    def _send_one(self) -> None:
        sim = self.sender.sim
        header = struct.pack(">Id", self.sent, sim.now)
        payload = header + b"\x00" * (self.payload_size - len(header))
        try:
            self.tx_sock.sendto(payload, self.dst_ip, self.port)
        except SocketError:
            return
        self.sent += 1

    def _on_datagram(self, payload: bytes, src_ip: IPv4Address, src_port: int) -> None:
        if len(payload) < 12:
            return
        seq, t_sent = struct.unpack(">Id", payload[:12])
        if seq in self._seen:
            self.duplicates += 1
            return
        self._seen.add(seq)
        self.received += 1
        self.latencies_s.append(self.receiver.sim.now - t_sent)

    @property
    def delivery_ratio(self) -> float:
        return self.received / self.sent if self.sent else 0.0

    def latency_quantile(self, q: float) -> float:
        if not self.latencies_s:
            return float("nan")
        ordered = sorted(self.latencies_s)
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


class BulkTcpTransfer:
    """Push N bytes over TCP and report goodput."""

    def __init__(self, sender: Host, receiver: Host,
                 dst_ip: "IPv4Address | str", *, port: int = 9100,
                 total_bytes: int = 200_000) -> None:
        self.sender = sender
        self.receiver = receiver
        self.dst_ip = IPv4Address(dst_ip)
        self.port = port
        self.total_bytes = total_bytes
        self.received_bytes = 0
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.conn = None
        receiver.tcp_listen(port, self._on_connection)

    def _on_connection(self, conn) -> None:
        def on_data(data: bytes) -> None:
            self.received_bytes += len(data)
            if self.received_bytes >= self.total_bytes and self.end_time is None:
                self.end_time = self.receiver.sim.now

        conn.on_data = on_data

    def start(self) -> None:
        sim = self.sender.sim
        self.start_time = sim.now
        self.conn = self.sender.tcp_connect(self.dst_ip, self.port)
        blob = bytes(self.total_bytes)

        def push() -> None:
            self.conn.send(blob)
            self.conn.close()

        self.conn.on_established = push

    @property
    def complete(self) -> bool:
        return self.end_time is not None

    @property
    def goodput_bps(self) -> float:
        if self.start_time is None or self.end_time is None:
            return 0.0
        elapsed = self.end_time - self.start_time
        return self.received_bytes * 8.0 / elapsed if elapsed > 0 else 0.0


class WepTrafficPump:
    """Background UDP chatter from a station, to generate WEP frames.

    Airsnort needs traffic: each data frame burns one IV.  The pump
    sends small datagrams at a fixed rate to any sink, sweeping the
    sequential IV space through the FMS-weak classes.
    """

    def __init__(self, station: Host, sink_ip: "IPv4Address | str",
                 *, rate_pps: float = 200.0, port: int = 9999) -> None:
        self.station = station
        self.sink_ip = IPv4Address(sink_ip)
        self.port = port
        self.rate_pps = rate_pps
        self.sock = station.udp_socket()
        self.sent = 0
        self._stop: Optional[Callable[[], None]] = None

    def start(self) -> None:
        self._stop = self.station.sim.every(1.0 / self.rate_pps, self._send)

    def stop(self) -> None:
        if self._stop is not None:
            self._stop()
            self._stop = None

    def _send(self) -> None:
        try:
            self.sock.sendto(b"background traffic", self.sink_ip, self.port)
            self.sent += 1
        except SocketError:
            pass
