"""Browsing workloads: a user clicking around the web."""

from __future__ import annotations

from typing import Optional

from repro.httpsim.browser import Browser
from repro.sim.kernel import Simulator

__all__ = ["BrowsingWorkload"]


class BrowsingWorkload:
    """Visit a list of URLs with think time between pages.

    Used by the hostile-hotspot experiments: ordinary browsing of
    trusted sites, which §5.1 argues is unsafe on a hostile segment.
    """

    def __init__(self, sim: Simulator, browser: Browser, urls: list[str],
                 *, think_time_s: float = 2.0) -> None:
        self.sim = sim
        self.browser = browser
        self.urls = list(urls)
        self.think_time_s = think_time_s
        self.pages_loaded = 0
        self.pages_failed = 0
        self.done = False
        self._idx = 0

    def start(self) -> None:
        self._next()

    def _next(self) -> None:
        if self._idx >= len(self.urls):
            self.done = True
            return
        url = self.urls[self._idx]
        self._idx += 1

        def on_done(visit) -> None:
            if visit.status == 200:
                self.pages_loaded += 1
            else:
                self.pages_failed += 1
            self.sim.schedule(self.think_time_s, self._next)

        self.browser.visit(url, on_done=on_done)
