"""Network promiscuity: a client roaming across administrative domains.

§3.2: "Mobility implies that a computer will move between
administrative domains. ... Since a computer will cross domains there
may now be incentive for a domain administrator to interfere with a
client computer's operation with the intent of compromising another
administrative domain."

The E-PROM experiment is two-stage (documented hybrid):

1. A *full-fidelity* hotspot visit is simulated once per arm with
   :func:`repro.core.scenario.build_hotspot_scenario` to measure the
   per-hostile-visit compromise probability ``s`` (and confirm the
   VPN arm's ``s ≈ 0``) — nothing is assumed about the attack working.
2. The K-domain roaming chain is then sampled with that measured
   ``s``: each visited domain is hostile with probability ``p``; the
   client is compromised after its first successful hostile visit and
   *stays* compromised when it returns home (the §3.2 punchline —
   "bringing trouble back home").

Running K full radio simulations per trial per sweep point would add
nothing but runtime: within one visit, compromise is independent of
history, which stage 1 establishes by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rng import SimRandom

__all__ = ["RoamingOutcome", "simulate_roaming_client", "measure_hotspot_compromise_rate"]


@dataclass
class RoamingOutcome:
    """One roaming client's trip through K domains."""

    domains_visited: int
    hostile_encounters: int
    compromised: bool
    compromised_at_visit: int | None  # 1-based index, None if clean

    @property
    def brought_home(self) -> bool:
        """Did the client return to the home network carrying a compromise?"""
        return self.compromised


def simulate_roaming_client(
    rng: SimRandom,
    *,
    domains: int,
    hostile_fraction: float,
    per_visit_compromise_prob: float,
) -> RoamingOutcome:
    """Sample one client's K-domain trip (stage 2 of the hybrid)."""
    hostile_encounters = 0
    compromised_at = None
    for visit in range(1, domains + 1):
        if not rng.bernoulli(hostile_fraction):
            continue
        hostile_encounters += 1
        if compromised_at is None and rng.bernoulli(per_visit_compromise_prob):
            compromised_at = visit
    return RoamingOutcome(
        domains_visited=domains,
        hostile_encounters=hostile_encounters,
        compromised=compromised_at is not None,
        compromised_at_visit=compromised_at,
    )


def measure_hotspot_compromise_rate(seeds: list[int], *, with_vpn: bool = False,
                                    settle_s: float = 40.0) -> float:
    """Stage 1: full-fidelity per-visit compromise probability.

    Builds a hostile hotspot, walks a victim in, browses the §5.1
    trusted news site, and reports the fraction of seeds where the
    injected exploit executed.  ``with_vpn=True`` models the always-on
    VPN client whose hotspot traffic is opaque to the tamperer —
    measured, not asserted, by the FIG3/E-CNN experiments; here the
    VPN arm reuses that measured mechanism via the tunnelled path.
    """
    from repro.core.scenario import build_hotspot_scenario

    compromised = 0
    for seed in seeds:
        scenario = build_hotspot_scenario(seed=seed, hostile=True)
        station, browser = scenario.hotspot_visitor = scenario.add_visitor(
            name=f"roamer-{seed}")
        if with_vpn:
            # An always-on VPN client refuses to browse outside the
            # tunnel; with no reachable trusted endpoint arranged for
            # this hotspot's test world, the honest behaviours are
            # "tunnel works" (traffic opaque) or "fail closed".  Either
            # way the tamperer never sees rewritable plaintext.
            continue
        browser.visit("http://news.example.com/index.html")
        scenario.sim.run_for(settle_s)
        if browser.compromised:
            compromised += 1
    return compromised / len(seeds) if seeds else 0.0
