"""Workload generators: traffic sources and roaming behaviour."""

from repro.workloads.roaming import RoamingOutcome, simulate_roaming_client
from repro.workloads.traffic import BulkTcpTransfer, CbrUdpStream, WepTrafficPump
from repro.workloads.web import BrowsingWorkload

__all__ = [
    "BrowsingWorkload",
    "BulkTcpTransfer",
    "CbrUdpStream",
    "RoamingOutcome",
    "WepTrafficPump",
    "simulate_roaming_client",
]
