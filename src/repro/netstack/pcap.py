"""IP-layer packet capture (tcpdump on a host interface).

Distinct from the radio-layer :mod:`repro.dot11.capture`: this taps the
IP path of a *host* — the rogue gateway uses one to observe victim
flows, and tests use them to assert exactly what crossed each hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.netstack.addressing import IPv4Address
from repro.netstack.ipv4 import PROTO_TCP, PROTO_UDP, IPv4Packet
from repro.netstack.tcp import TcpSegment
from repro.netstack.udp import UdpDatagram

__all__ = ["CapturedPacket", "PacketCapture"]


@dataclass(frozen=True)
class CapturedPacket:
    """One captured IP packet with direction and interface metadata."""

    time: float
    direction: str  # "in" | "out" | "forward"
    interface: str
    packet: IPv4Packet

    def ports(self) -> Optional[tuple[int, int]]:
        p = self.packet
        if p.proto not in (PROTO_TCP, PROTO_UDP) or len(p.payload) < 4:
            return None
        return (
            int.from_bytes(p.payload[0:2], "big"),
            int.from_bytes(p.payload[2:4], "big"),
        )

    def tcp(self) -> Optional[TcpSegment]:
        if self.packet.proto != PROTO_TCP:
            return None
        # memoryview: header fields are unpacked in place; only the
        # payload slice is materialized (zero-copy decode contract).
        return TcpSegment.from_bytes(memoryview(self.packet.payload),
                                     self.packet.src, self.packet.dst,
                                     verify_checksum=False)

    def udp(self) -> Optional[UdpDatagram]:
        if self.packet.proto != PROTO_UDP:
            return None
        return UdpDatagram.from_bytes(memoryview(self.packet.payload),
                                      self.packet.src, self.packet.dst,
                                      verify_checksum=False)


class PacketCapture:
    """Append-only IP capture with display-filter-style selection."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.packets: list[CapturedPacket] = []
        self.capacity = capacity
        self._taps: list[Callable[[CapturedPacket], None]] = []

    def add(self, captured: CapturedPacket) -> None:
        self.packets.append(captured)
        if self.capacity is not None and len(self.packets) > self.capacity:
            del self.packets[: self.capacity // 2]
        for tap in self._taps:
            tap(captured)

    def tap(self, callback: Callable[[CapturedPacket], None]) -> None:
        self._taps.append(callback)

    def __len__(self) -> int:
        return len(self.packets)

    def __iter__(self) -> Iterator[CapturedPacket]:
        return iter(self.packets)

    def select(
        self,
        src: Optional[IPv4Address] = None,
        dst: Optional[IPv4Address] = None,
        proto: Optional[int] = None,
        dport: Optional[int] = None,
        direction: Optional[str] = None,
        since: float = 0.0,
    ) -> Iterator[CapturedPacket]:
        for cap in self.packets:
            if cap.time < since:
                continue
            p = cap.packet
            if src is not None and p.src != src:
                continue
            if dst is not None and p.dst != dst:
                continue
            if proto is not None and p.proto != proto:
                continue
            if direction is not None and cap.direction != direction:
                continue
            if dport is not None:
                ports = cap.ports()
                if ports is None or ports[1] != dport:
                    continue
            yield cap

    def count(self, **kw) -> int:
        return sum(1 for _ in self.select(**kw))

    def payload_stream(self, src: IPv4Address, dst: IPv4Address) -> bytes:
        """Concatenated TCP payload bytes seen from src to dst (sniffed stream)."""
        chunks: list[tuple[int, bytes]] = []
        seen: set[int] = set()
        for cap in self.select(src=src, dst=dst, proto=PROTO_TCP):
            seg = cap.tcp()
            if seg and seg.payload and seg.seq not in seen:
                seen.add(seg.seq)
                chunks.append((seg.seq, seg.payload))
        chunks.sort(key=lambda c: c[0])
        return b"".join(payload for _, payload in chunks)
