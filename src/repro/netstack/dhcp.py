"""DHCP message format and lease pool.

Public hotspots hand out addresses over DHCP; the hostile-hotspot
scenario (§1.3.2, E-CNN) uses it so a visiting client genuinely
obtains its configuration *from the attacker* — default gateway and
DNS server included, which is all a hostile hotspot needs to sit in
the middle of everything.

Format is a compact stand-in for RFC 2131 (fixed fields only, no
options TLVs); the trust relationships — a client believes whatever
the first responder says — are what matter, and those are faithful.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.dot11.mac import MacAddress
from repro.netstack.addressing import IPv4Address, Network
from repro.sim.errors import ProtocolError
from repro.wire import HeaderSpec, fixed_bytes, u8, u32

__all__ = ["DhcpMessage", "DhcpMessageType", "LeasePool", "DHCP_SERVER_PORT", "DHCP_CLIENT_PORT"]

DHCP_SERVER_PORT = 67
DHCP_CLIENT_PORT = 68


class DhcpMessageType(enum.IntEnum):
    DISCOVER = 1
    OFFER = 2
    REQUEST = 3
    ACK = 5
    NAK = 6


_ip = lambda name: fixed_bytes(name, 4, enc=lambda a: a.bytes, dec=IPv4Address)  # noqa: E731

_MESSAGE = HeaderSpec(
    "DHCP message", ">",
    u8("message_type"),
    u32("xid"),
    fixed_bytes("client_mac", 6, enc=lambda m: m.bytes, dec=MacAddress),
    _ip("your_ip"),
    _ip("server_ip"),
    _ip("gateway"),
    _ip("dns_server"),
    _ip("netmask"),
)


@dataclass(frozen=True)
class DhcpMessage:
    """One DHCP message (compact fixed-field encoding)."""

    message_type: DhcpMessageType
    xid: int
    client_mac: MacAddress
    your_ip: IPv4Address = IPv4Address(0)
    server_ip: IPv4Address = IPv4Address(0)
    gateway: IPv4Address = IPv4Address(0)
    dns_server: IPv4Address = IPv4Address(0)
    netmask: IPv4Address = IPv4Address(0)

    def to_bytes(self) -> bytes:
        return _MESSAGE.pack(
            message_type=int(self.message_type),
            xid=self.xid,
            client_mac=self.client_mac,
            your_ip=self.your_ip,
            server_ip=self.server_ip,
            gateway=self.gateway,
            dns_server=self.dns_server,
            netmask=self.netmask,
        )

    @classmethod
    def from_bytes(cls, raw: Union[bytes, bytearray, memoryview]) -> "DhcpMessage":
        fields = _MESSAGE.unpack(raw)
        mtype = fields.pop("message_type")
        try:
            message_type = DhcpMessageType(mtype)
        except ValueError as exc:
            raise ProtocolError(f"unknown DHCP message type {mtype}") from exc
        return cls(message_type=message_type, **fields)


class LeasePool:
    """Address allocation for a DHCP server."""

    def __init__(self, network: Network, first_host: int = 100) -> None:
        self.network = network
        self._next = int(network.address) + first_host
        self._leases: dict[MacAddress, IPv4Address] = {}

    def lease_for(self, mac: MacAddress) -> IPv4Address:
        """Existing lease for ``mac``, or a fresh address."""
        if mac in self._leases:
            return self._leases[mac]
        ip = IPv4Address(self._next)
        if ip not in self.network or ip == self.network.broadcast:
            raise ProtocolError("DHCP pool exhausted")
        self._next += 1
        self._leases[mac] = ip
        return ip

    def leases(self) -> dict[MacAddress, IPv4Address]:
        return dict(self._leases)

    def __len__(self) -> int:
        return len(self._leases)
