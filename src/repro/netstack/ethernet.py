"""Ethernet framing, LLC/SNAP encapsulation, and wired LAN segments.

Two details matter to the paper:

* 802.11 data-frame bodies carry IP/ARP behind an **LLC/SNAP** header
  whose first byte is ``0xAA`` — the known plaintext that lets a
  sniffer recover RC4 keystream byte 0 from every WEP frame
  (:func:`repro.crypto.wep.wep_first_keystream_byte`).
* The wired-vs-wireless comparison (§1.1) turns on switch vs hub vs
  air: "clients are connected to switches and hence the traffic
  between the client and the network is not readily visible to other
  clients."  :class:`Switch` (MAC-learning, unicast isolation) and
  :class:`Hub` (broadcast) let E-WIRED measure exactly that.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.dot11.mac import BROADCAST, MacAddress
from repro.obs.lineage import flight_recorder
from repro.sim.errors import ConfigurationError, ProtocolError
from repro.sim.kernel import Simulator
from repro.wire import HeaderSpec, fixed_bytes, u16

__all__ = [
    "ETHERTYPE_ARP",
    "ETHERTYPE_IPV4",
    "EthernetFrame",
    "Hub",
    "LanSegment",
    "Switch",
    "WiredPort",
    "llc_decap",
    "llc_encap",
]

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806

# 802.2 LLC (DSAP=SSAP=0xAA SNAP, control 0x03) + SNAP OUI 00:00:00.
LLC_SNAP_PREFIX = b"\xaa\xaa\x03\x00\x00\x00"


def llc_encap(ethertype: int, payload: bytes) -> bytes:
    """Wrap an L3 payload for an 802.11 data-frame body."""
    return LLC_SNAP_PREFIX + struct.pack(">H", ethertype) + payload


def llc_decap(body: bytes) -> tuple[int, bytes]:
    """Split an 802.11 data body into (ethertype, payload)."""
    if len(body) < 8 or body[:6] != LLC_SNAP_PREFIX:
        raise ProtocolError("not an LLC/SNAP encapsulated body")
    (ethertype,) = struct.unpack(">H", body[6:8])
    return ethertype, body[8:]


_HEADER = HeaderSpec(
    "ethernet frame", ">",
    fixed_bytes("dst", 6, enc=lambda m: m.bytes, dec=MacAddress),
    fixed_bytes("src", 6, enc=lambda m: m.bytes, dec=MacAddress),
    u16("ethertype"),
)


@dataclass(frozen=True)
class EthernetFrame:
    """A DIX Ethernet II frame."""

    dst: MacAddress
    src: MacAddress
    ethertype: int
    payload: bytes
    #: Flight-recorder lineage id; stamped (via object.__setattr__ — the
    #: dataclass is frozen) at first transmission while a recorder is
    #: installed.  compare=False keeps frame equality untouched.
    trace_id: Optional[int] = field(default=None, compare=False, repr=False)

    HEADER_LEN = 14

    def to_bytes(self) -> bytes:
        return _HEADER.pack(dst=self.dst, src=self.src, ethertype=self.ethertype) + self.payload

    @classmethod
    def from_bytes(cls, raw: Union[bytes, bytearray, memoryview]) -> "EthernetFrame":
        view = memoryview(raw)
        fields = _HEADER.unpack(view)
        return cls(payload=bytes(view[cls.HEADER_LEN:]), **fields)


class WiredPort:
    """One NIC's attachment to a LAN segment."""

    def __init__(self, name: str, mac: MacAddress, *, promiscuous: bool = False) -> None:
        self.name = name
        self.mac = mac
        self.promiscuous = promiscuous
        self.on_receive: Optional[Callable[[EthernetFrame], None]] = None
        self.segment: Optional["LanSegment"] = None
        self.tx_frames = 0
        self.rx_frames = 0

    def transmit(self, frame: EthernetFrame) -> None:
        if self.segment is None:
            raise ConfigurationError(f"wired port {self.name!r} not attached to a segment")
        self.tx_frames += 1
        rec = flight_recorder()
        if rec is not None:
            if frame.trace_id is None:
                object.__setattr__(
                    frame, "trace_id",
                    rec.begin("ether", self.name, self.segment.sim.now))
            rec.hop("ether", "tx", trace_id=frame.trace_id, host=self.name,
                    t=self.segment.sim.now, src=str(frame.src),
                    dst=str(frame.dst), ethertype=hex(frame.ethertype),
                    bytes=len(frame.payload) + frame.HEADER_LEN)
        self.segment.transmit(self, frame)

    def deliver(self, frame: EthernetFrame) -> None:
        if self.on_receive is None:
            return
        if not self.promiscuous and frame.dst != self.mac and not frame.dst.is_broadcast and not frame.dst.is_multicast:
            return
        self.rx_frames += 1
        rec = flight_recorder()
        if rec is None or frame.trace_id is None:
            self.on_receive(frame)
            return
        # Wire delivery is a *scheduled* event, so the causal context
        # does not survive the hop on the call stack — the frame's own
        # trace_id re-establishes it.
        rec.hop("ether", "rx", trace_id=frame.trace_id, host=self.name,
                t=self.segment.sim.now if self.segment is not None else None)
        with rec.frame_context(frame.trace_id):
            self.on_receive(frame)


class LanSegment:
    """Base class for wired LAN fabrics (hub / switch)."""

    #: Per-hop wire latency; small but nonzero so event ordering is sane.
    LATENCY_S = 5e-6

    def __init__(self, sim: Simulator, name: str = "lan") -> None:
        self.sim = sim
        self.name = name
        self.ports: list[WiredPort] = []

    def attach(self, port: WiredPort) -> WiredPort:
        if port.segment is not None:
            raise ConfigurationError(f"port {port.name!r} already attached")
        port.segment = self
        self.ports.append(port)
        return port

    def detach(self, port: WiredPort) -> None:
        if port in self.ports:
            self.ports.remove(port)
            port.segment = None

    def transmit(self, src_port: WiredPort, frame: EthernetFrame) -> None:
        raise NotImplementedError


class Hub(LanSegment):
    """A shared-medium repeater: every port sees every frame.

    The wired topology in which sniffing *is* easy — used as the
    E-WIRED baseline against which the switch shows its isolation.
    """

    def transmit(self, src_port: WiredPort, frame: EthernetFrame) -> None:
        for port in self.ports:
            if port is src_port:
                continue
            self.sim.schedule(self.LATENCY_S, port.deliver, frame)


class Switch(LanSegment):
    """A learning switch: unicast goes only to the learned port.

    A promiscuous port on a switch sees almost nothing of other
    stations' unicast traffic (only floods) — the paper's §1.1 claim
    that switched wired networks resist casual eavesdropping.
    """

    def __init__(self, sim: Simulator, name: str = "switch") -> None:
        super().__init__(sim, name)
        self._table: dict[MacAddress, WiredPort] = {}
        self.flooded_frames = 0
        self.forwarded_frames = 0

    def transmit(self, src_port: WiredPort, frame: EthernetFrame) -> None:
        # Learn the sender's location.
        self._table[frame.src] = src_port
        if frame.dst.is_broadcast or frame.dst.is_multicast:
            self._flood(src_port, frame)
            return
        out = self._table.get(frame.dst)
        if out is None:
            self._flood(src_port, frame)
        elif out is not src_port:
            self.forwarded_frames += 1
            self.sim.schedule(self.LATENCY_S, out.deliver, frame)

    def _flood(self, src_port: WiredPort, frame: EthernetFrame) -> None:
        self.flooded_frames += 1
        for port in self.ports:
            if port is not src_port:
                self.sim.schedule(self.LATENCY_S, port.deliver, frame)

    def mac_table(self) -> dict[MacAddress, str]:
        """Learned MAC → port-name map (used by the §2.3 wired-side audit)."""
        return {mac: port.name for mac, port in self._table.items()}
