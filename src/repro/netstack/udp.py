"""UDP datagrams.

UDP matters for two experiments: DNS (whose spoofability is the wired
MITM baseline of §1.2) and the VPN-overhead sweep, where "any UDP
traffic is subject to unnecessary retransmission by TCP" (§5.3) when
tunnelled through the PPP-over-SSH VPN.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.netstack.addressing import IPv4Address
from repro.netstack.ipv4 import PROTO_UDP, internet_checksum
from repro.sim.errors import ProtocolError

__all__ = ["UdpDatagram"]


@dataclass(frozen=True)
class UdpDatagram:
    """A UDP datagram with pseudo-header checksum."""

    src_port: int
    dst_port: int
    payload: bytes

    HEADER_LEN = 8

    def to_bytes(self, src_ip: IPv4Address, dst_ip: IPv4Address) -> bytes:
        length = self.HEADER_LEN + len(self.payload)
        header = struct.pack(">HHHH", self.src_port, self.dst_port, length, 0)
        pseudo = src_ip.bytes + dst_ip.bytes + struct.pack(">BBH", 0, PROTO_UDP, length)
        checksum = internet_checksum(pseudo + header + self.payload)
        if checksum == 0:
            checksum = 0xFFFF  # RFC 768: transmitted zero means "no checksum"
        return struct.pack(">HHHH", self.src_port, self.dst_port, length, checksum) + self.payload

    @classmethod
    def from_bytes(cls, raw: bytes, src_ip: IPv4Address, dst_ip: IPv4Address,
                   verify_checksum: bool = True) -> "UdpDatagram":
        if len(raw) < cls.HEADER_LEN:
            raise ProtocolError("UDP datagram too short")
        src_port, dst_port, length, checksum = struct.unpack(">HHHH", raw[:8])
        if length > len(raw):
            raise ProtocolError("UDP length exceeds buffer")
        data = raw[:length]
        if verify_checksum and checksum != 0:
            pseudo = src_ip.bytes + dst_ip.bytes + struct.pack(">BBH", 0, PROTO_UDP, length)
            if internet_checksum(pseudo + data) != 0:
                raise ProtocolError("UDP checksum failed")
        return cls(src_port=src_port, dst_port=dst_port, payload=data[8:])

    def __len__(self) -> int:
        return self.HEADER_LEN + len(self.payload)
