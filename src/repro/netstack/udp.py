"""UDP datagrams.

UDP matters for two experiments: DNS (whose spoofability is the wired
MITM baseline of §1.2) and the VPN-overhead sweep, where "any UDP
traffic is subject to unnecessary retransmission by TCP" (§5.3) when
tunnelled through the PPP-over-SSH VPN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.netstack.addressing import IPv4Address
from repro.netstack.ipv4 import PROTO_UDP
from repro.sim.errors import ProtocolError
from repro.wire import (
    HeaderSpec,
    internet_checksum,
    patch_u16,
    pseudo_header,
    transport_checksum,
    u16,
)

__all__ = ["UdpDatagram"]

_HEADER = HeaderSpec(
    "UDP datagram", ">",
    u16("src_port"),
    u16("dst_port"),
    u16("length"),
    u16("checksum"),
)
_CHECKSUM_OFFSET = 6


@dataclass(frozen=True)
class UdpDatagram:
    """A UDP datagram with pseudo-header checksum."""

    src_port: int
    dst_port: int
    payload: bytes

    HEADER_LEN = 8

    def to_bytes(self, src_ip: IPv4Address, dst_ip: IPv4Address) -> bytes:
        header = bytearray(self.HEADER_LEN)
        _HEADER.pack_into(
            header, 0,
            src_port=self.src_port,
            dst_port=self.dst_port,
            length=self.HEADER_LEN + len(self.payload),
            checksum=0,
        )
        checksum = transport_checksum(src_ip.bytes, dst_ip.bytes, PROTO_UDP,
                                      header, self.payload)
        if checksum == 0:
            checksum = 0xFFFF  # RFC 768: transmitted zero means "no checksum"
        patch_u16(header, _CHECKSUM_OFFSET, checksum)
        return bytes(header) + self.payload

    @classmethod
    def from_bytes(cls, raw: Union[bytes, bytearray, memoryview],
                   src_ip: IPv4Address, dst_ip: IPv4Address,
                   verify_checksum: bool = True) -> "UdpDatagram":
        view = memoryview(raw)
        fields = _HEADER.unpack(view)
        length = fields["length"]
        if length > len(view):
            raise ProtocolError("UDP length exceeds buffer")
        data = view[:length]
        if verify_checksum and fields["checksum"] != 0:
            pseudo = pseudo_header(src_ip.bytes, dst_ip.bytes, PROTO_UDP, length)
            if internet_checksum(pseudo, data) != 0:
                raise ProtocolError("UDP checksum failed")
        return cls(src_port=fields["src_port"], dst_port=fields["dst_port"],
                   payload=bytes(data[cls.HEADER_LEN:]))

    def __len__(self) -> int:
        return self.HEADER_LEN + len(self.payload)
