"""IPv4 packets: declarative header spec, checksum, protocol numbers.

The header layout lives in a :class:`repro.wire.HeaderSpec`; the
checksum streams over the encode buffer and is patched in place
(:func:`repro.wire.patch_u16`) instead of re-splicing the header.
``internet_checksum`` is re-exported from :mod:`repro.wire.checksum`
for the transport layers that share it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Union

from repro.netstack.addressing import IPv4Address
from repro.sim.errors import ProtocolError
from repro.wire import HeaderSpec, fixed_bytes, internet_checksum, patch_u16, u8, u16

__all__ = [
    "IPv4Packet",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "internet_checksum",
]

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

HEADER_LEN = 20  # no options supported

_VIHL = (4 << 4) | 5    # version 4, IHL 5
_FLAGS_DF = 0x4000      # DF set, no fragments

_HEADER = HeaderSpec(
    "IPv4 packet", ">",
    u8("vihl"),
    u8("tos"),
    u16("total_len"),
    u16("ident"),
    u16("flags"),
    u8("ttl"),
    u8("proto"),
    u16("checksum"),
    fixed_bytes("src", 4, enc=lambda a: a.bytes, dec=IPv4Address),
    fixed_bytes("dst", 4, enc=lambda a: a.bytes, dec=IPv4Address),
)
_CHECKSUM_OFFSET = 10


@dataclass(frozen=True)
class IPv4Packet:
    """An IPv4 packet (no options, no fragmentation — documented limits).

    Fragmentation is out of scope: all simulated links share an MTU
    large enough for the experiments, and nothing in the paper depends
    on fragment handling.
    """

    src: IPv4Address
    dst: IPv4Address
    proto: int
    payload: bytes
    ttl: int = 64
    ident: int = 0
    tos: int = 0

    def to_bytes(self) -> bytes:
        header = bytearray(HEADER_LEN)
        _HEADER.pack_into(
            header, 0,
            vihl=_VIHL,
            tos=self.tos,
            total_len=HEADER_LEN + len(self.payload),
            ident=self.ident & 0xFFFF,
            flags=_FLAGS_DF,
            ttl=self.ttl,
            proto=self.proto,
            checksum=0,
            src=self.src,
            dst=self.dst,
        )
        patch_u16(header, _CHECKSUM_OFFSET, internet_checksum(header))
        return bytes(header) + self.payload

    @classmethod
    def from_bytes(cls, raw: Union[bytes, bytearray, memoryview]) -> "IPv4Packet":
        view = memoryview(raw)
        fields = _HEADER.unpack(view)
        vihl = fields["vihl"]
        if vihl >> 4 != 4:
            raise ProtocolError("not an IPv4 packet")
        if (vihl & 0x0F) * 4 != HEADER_LEN:
            raise ProtocolError("IPv4 options unsupported")
        if internet_checksum(view[:HEADER_LEN]) != 0:
            raise ProtocolError("IPv4 header checksum failed")
        total_len = fields["total_len"]
        if total_len > len(view):
            raise ProtocolError("IPv4 total length exceeds buffer")
        return cls(
            src=fields["src"],
            dst=fields["dst"],
            proto=fields["proto"],
            payload=bytes(view[HEADER_LEN:total_len]),
            ttl=fields["ttl"],
            ident=fields["ident"],
            tos=fields["tos"],
        )

    # ------------------------------------------------------------------
    # forwarding helpers
    # ------------------------------------------------------------------
    def decremented(self) -> "IPv4Packet":
        """Copy with TTL - 1; raises when the TTL would hit zero."""
        if self.ttl <= 1:
            raise ProtocolError("TTL expired in transit")
        return replace(self, ttl=self.ttl - 1)

    def with_src(self, src: IPv4Address) -> "IPv4Packet":
        """Copy with a rewritten source (SNAT)."""
        return replace(self, src=src)

    def with_dst(self, dst: IPv4Address) -> "IPv4Packet":
        """Copy with a rewritten destination (DNAT)."""
        return replace(self, dst=dst)

    def with_payload(self, payload: bytes) -> "IPv4Packet":
        """Copy with a replaced transport payload (port rewriting)."""
        return replace(self, payload=payload)

    def __len__(self) -> int:
        return HEADER_LEN + len(self.payload)
