"""IPv4 packets: header serialization, checksum, protocol numbers."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace

from repro.netstack.addressing import IPv4Address
from repro.sim.errors import ProtocolError

__all__ = [
    "IPv4Packet",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "internet_checksum",
]

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

HEADER_LEN = 20  # no options supported


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones-complement checksum (also used by ICMP/TCP/UDP)."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


@dataclass(frozen=True)
class IPv4Packet:
    """An IPv4 packet (no options, no fragmentation — documented limits).

    Fragmentation is out of scope: all simulated links share an MTU
    large enough for the experiments, and nothing in the paper depends
    on fragment handling.
    """

    src: IPv4Address
    dst: IPv4Address
    proto: int
    payload: bytes
    ttl: int = 64
    ident: int = 0
    tos: int = 0

    def to_bytes(self) -> bytes:
        total_len = HEADER_LEN + len(self.payload)
        header = struct.pack(
            ">BBHHHBBH4s4s",
            (4 << 4) | 5,         # version 4, IHL 5
            self.tos,
            total_len,
            self.ident & 0xFFFF,
            0x4000,               # DF set, no fragments
            self.ttl,
            self.proto,
            0,                    # checksum placeholder
            self.src.bytes,
            self.dst.bytes,
        )
        checksum = internet_checksum(header)
        header = header[:10] + struct.pack(">H", checksum) + header[12:]
        return header + self.payload

    @classmethod
    def from_bytes(cls, raw: bytes) -> "IPv4Packet":
        if len(raw) < HEADER_LEN:
            raise ProtocolError("IPv4 packet too short")
        vihl, tos, total_len, ident, _flags, ttl, proto, _cksum, src, dst = struct.unpack(
            ">BBHHHBBH4s4s", raw[:HEADER_LEN]
        )
        if vihl >> 4 != 4:
            raise ProtocolError("not an IPv4 packet")
        ihl = (vihl & 0x0F) * 4
        if ihl != HEADER_LEN:
            raise ProtocolError("IPv4 options unsupported")
        if internet_checksum(raw[:HEADER_LEN]) != 0:
            raise ProtocolError("IPv4 header checksum failed")
        if total_len > len(raw):
            raise ProtocolError("IPv4 total length exceeds buffer")
        return cls(
            src=IPv4Address(src),
            dst=IPv4Address(dst),
            proto=proto,
            payload=raw[HEADER_LEN:total_len],
            ttl=ttl,
            ident=ident,
            tos=tos,
        )

    # ------------------------------------------------------------------
    # forwarding helpers
    # ------------------------------------------------------------------
    def decremented(self) -> "IPv4Packet":
        """Copy with TTL - 1; raises when the TTL would hit zero."""
        if self.ttl <= 1:
            raise ProtocolError("TTL expired in transit")
        return replace(self, ttl=self.ttl - 1)

    def with_src(self, src: IPv4Address) -> "IPv4Packet":
        """Copy with a rewritten source (SNAT)."""
        return replace(self, src=src)

    def with_dst(self, dst: IPv4Address) -> "IPv4Packet":
        """Copy with a rewritten destination (DNAT)."""
        return replace(self, dst=dst)

    def with_payload(self, payload: bytes) -> "IPv4Packet":
        """Copy with a replaced transport payload (port rewriting)."""
        return replace(self, payload=payload)

    def __len__(self) -> int:
        return HEADER_LEN + len(self.payload)
