"""From-scratch TCP/IP stack over the simulated links.

The paper's experiment is an *IP-layer* attack staged from a link-layer
foothold: Netfilter DNAT redirects the victim's port-80 flows into
netsed, which rewrites the TCP byte stream.  Reproducing that honestly
requires a real stack — ARP with proxy-ARP (parprouted), IPv4
forwarding with TTL and checksums, a TCP with genuine segmentation and
retransmission (netsed's packet-boundary miss and the VPN's
TCP-over-TCP pathology both live there), UDP, DNS, and a Netfilter
model faithful to the iptables command printed in §4.1.
"""

from repro.netstack.addressing import IPv4Address, Network
from repro.netstack.arp import ArpOp, ArpPacket, ArpTable
from repro.netstack.ethernet import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    EthernetFrame,
    Hub,
    Switch,
    WiredPort,
    llc_decap,
    llc_encap,
)
from repro.netstack.icmp import IcmpMessage, IcmpType
from repro.netstack.ipv4 import PROTO_ICMP, PROTO_TCP, PROTO_UDP, IPv4Packet
from repro.netstack.netfilter import (
    Chain,
    ConnTrack,
    Netfilter,
    Rule,
    TargetAccept,
    TargetDnat,
    TargetDrop,
    TargetRedirect,
    TargetSnat,
)
from repro.netstack.routing import Route, RoutingTable
from repro.netstack.tcp import TcpConnection, TcpSegment, TcpState
from repro.netstack.udp import UdpDatagram

__all__ = [
    "ArpOp",
    "ArpPacket",
    "ArpTable",
    "Chain",
    "ConnTrack",
    "ETHERTYPE_ARP",
    "ETHERTYPE_IPV4",
    "EthernetFrame",
    "Hub",
    "IPv4Address",
    "IPv4Packet",
    "IcmpMessage",
    "IcmpType",
    "Netfilter",
    "Network",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "Route",
    "RoutingTable",
    "Rule",
    "Switch",
    "TargetAccept",
    "TargetDnat",
    "TargetDrop",
    "TargetRedirect",
    "TargetSnat",
    "TcpConnection",
    "TcpSegment",
    "TcpState",
    "UdpDatagram",
    "WiredPort",
    "llc_decap",
    "llc_encap",
]
