"""ICMP: echo (ping), destination unreachable, time exceeded.

Ping is the reproduction's connectivity probe — the first thing every
scenario test does after wiring a topology together is confirm the
victim can ping through whatever path (legitimate AP, rogue bridge, or
VPN tunnel) the scenario built.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.netstack.ipv4 import internet_checksum
from repro.sim.errors import ProtocolError

__all__ = ["IcmpMessage", "IcmpType"]


class IcmpType(enum.IntEnum):
    ECHO_REPLY = 0
    DEST_UNREACHABLE = 3
    ECHO_REQUEST = 8
    TIME_EXCEEDED = 11


@dataclass(frozen=True)
class IcmpMessage:
    """An ICMP message; for echo, ``rest`` packs identifier and sequence."""

    icmp_type: int
    code: int
    rest: int = 0
    payload: bytes = b""

    def to_bytes(self) -> bytes:
        header = struct.pack(">BBHI", self.icmp_type, self.code, 0, self.rest)
        checksum = internet_checksum(header + self.payload)
        return struct.pack(">BBHI", self.icmp_type, self.code, checksum, self.rest) + self.payload

    @classmethod
    def from_bytes(cls, raw: bytes) -> "IcmpMessage":
        if len(raw) < 8:
            raise ProtocolError("ICMP message too short")
        if internet_checksum(raw) != 0:
            raise ProtocolError("ICMP checksum failed")
        icmp_type, code, _cksum, rest = struct.unpack(">BBHI", raw[:8])
        return cls(icmp_type=icmp_type, code=code, rest=rest, payload=raw[8:])

    # ------------------------------------------------------------------
    # echo helpers
    # ------------------------------------------------------------------
    @classmethod
    def echo_request(cls, ident: int, seq: int, payload: bytes = b"ping") -> "IcmpMessage":
        return cls(IcmpType.ECHO_REQUEST, 0, ((ident & 0xFFFF) << 16) | (seq & 0xFFFF), payload)

    @classmethod
    def echo_reply_to(cls, request: "IcmpMessage") -> "IcmpMessage":
        return cls(IcmpType.ECHO_REPLY, 0, request.rest, request.payload)

    @property
    def echo_ident(self) -> int:
        return (self.rest >> 16) & 0xFFFF

    @property
    def echo_seq(self) -> int:
        return self.rest & 0xFFFF

    @classmethod
    def time_exceeded(cls, original_header: bytes) -> "IcmpMessage":
        return cls(IcmpType.TIME_EXCEEDED, 0, 0, original_header[:28])

    @classmethod
    def unreachable(cls, original_header: bytes, code: int = 1) -> "IcmpMessage":
        return cls(IcmpType.DEST_UNREACHABLE, code, 0, original_header[:28])
