"""ICMP: echo (ping), destination unreachable, time exceeded.

Ping is the reproduction's connectivity probe — the first thing every
scenario test does after wiring a topology together is confirm the
victim can ping through whatever path (legitimate AP, rogue bridge, or
VPN tunnel) the scenario built.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.sim.errors import ProtocolError
from repro.wire import HeaderSpec, internet_checksum, patch_u16, u8, u16, u32

__all__ = ["IcmpMessage", "IcmpType"]


class IcmpType(enum.IntEnum):
    ECHO_REPLY = 0
    DEST_UNREACHABLE = 3
    ECHO_REQUEST = 8
    TIME_EXCEEDED = 11


_HEADER = HeaderSpec(
    "ICMP message", ">",
    u8("icmp_type"),
    u8("code"),
    u16("checksum"),
    u32("rest"),
)
_CHECKSUM_OFFSET = 2
_HEADER_LEN = 8


@dataclass(frozen=True)
class IcmpMessage:
    """An ICMP message; for echo, ``rest`` packs identifier and sequence."""

    icmp_type: int
    code: int
    rest: int = 0
    payload: bytes = b""

    def to_bytes(self) -> bytes:
        header = bytearray(_HEADER_LEN)
        _HEADER.pack_into(header, 0, icmp_type=self.icmp_type, code=self.code,
                          checksum=0, rest=self.rest)
        patch_u16(header, _CHECKSUM_OFFSET,
                  internet_checksum(header, self.payload))
        return bytes(header) + self.payload

    @classmethod
    def from_bytes(cls, raw: Union[bytes, bytearray, memoryview]) -> "IcmpMessage":
        view = memoryview(raw)
        fields = _HEADER.unpack(view)
        if internet_checksum(view) != 0:
            raise ProtocolError("ICMP checksum failed")
        return cls(icmp_type=fields["icmp_type"], code=fields["code"],
                   rest=fields["rest"], payload=bytes(view[_HEADER_LEN:]))

    # ------------------------------------------------------------------
    # echo helpers
    # ------------------------------------------------------------------
    @classmethod
    def echo_request(cls, ident: int, seq: int, payload: bytes = b"ping") -> "IcmpMessage":
        return cls(IcmpType.ECHO_REQUEST, 0, ((ident & 0xFFFF) << 16) | (seq & 0xFFFF), payload)

    @classmethod
    def echo_reply_to(cls, request: "IcmpMessage") -> "IcmpMessage":
        return cls(IcmpType.ECHO_REPLY, 0, request.rest, request.payload)

    @property
    def echo_ident(self) -> int:
        return (self.rest >> 16) & 0xFFFF

    @property
    def echo_seq(self) -> int:
        return self.rest & 0xFFFF

    @classmethod
    def time_exceeded(cls, original_header: bytes) -> "IcmpMessage":
        return cls(IcmpType.TIME_EXCEEDED, 0, 0, original_header[:28])

    @classmethod
    def unreachable(cls, original_header: bytes, code: int = 1) -> "IcmpMessage":
        return cls(IcmpType.DEST_UNREACHABLE, code, 0, original_header[:28])
