"""TCP: segments and a full connection state machine.

Two of the paper's observations only emerge from a *real* TCP:

* netsed "will not match strings that cross packet boundaries" (§4.2)
  — so segmentation must be genuine, with an MSS that experiments can
  sweep;
* the PPP-over-SSH VPN "has drawbacks since any UDP traffic is subject
  to unnecessary retransmission by TCP" (§5.3) — so loss must trigger
  genuine retransmission, RTO backoff, and congestion-window collapse
  (the TCP-over-TCP meltdown measured by E-VPNOH).

The implementation is classic Reno-style TCP: three-way handshake,
cumulative ACKs, in-order delivery with out-of-order reassembly,
Jacobson RTT estimation with Karn's rule, exponential RTO backoff,
slow start / congestion avoidance / fast retransmit.  Documented
simplifications (none of which the experiments are sensitive to):
no delayed ACK, no Nagle, no window scaling or SACK, a fixed 64 KiB
receive window, and a short TIME_WAIT.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.netstack.addressing import IPv4Address
from repro.netstack.ipv4 import PROTO_TCP
from repro.obs.lineage import flight_recorder
from repro.obs.runtime import obs_metrics
from repro.sim.errors import ProtocolError, SocketError
from repro.sim.kernel import Event, Simulator
from repro.wire import (
    HeaderSpec,
    internet_checksum,
    patch_u16,
    pseudo_header,
    transport_checksum,
    u8,
    u16,
    u32,
)

__all__ = ["TcpSegment", "TcpConnection", "TcpState", "FLAG_SYN", "FLAG_ACK",
           "FLAG_FIN", "FLAG_RST", "FLAG_PSH"]

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10

_MOD = 1 << 32


def seq_add(a: int, n: int) -> int:
    return (a + n) % _MOD


def seq_lt(a: int, b: int) -> bool:
    """True if a < b in 32-bit sequence space."""
    return 0 < (b - a) % _MOD < _MOD // 2


def seq_le(a: int, b: int) -> bool:
    return a == b or seq_lt(a, b)


_HEADER = HeaderSpec(
    "TCP segment", ">",
    u16("src_port"),
    u16("dst_port"),
    u32("seq"),
    u32("ack"),
    u8("offset_byte"),
    u8("flags"),
    u16("window"),
    u16("checksum"),
    u16("urgent"),
)
_CHECKSUM_OFFSET = 16
_OFFSET_5_WORDS = 5 << 4


@dataclass(frozen=True)
class TcpSegment:
    """One TCP segment (no options; MSS is negotiated out of band)."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    window: int = 65535
    payload: bytes = b""
    urgent: int = 0

    HEADER_LEN = 20

    def to_bytes(self, src_ip: IPv4Address, dst_ip: IPv4Address) -> bytes:
        buf = bytearray(self.HEADER_LEN + len(self.payload))
        _HEADER.pack_into(
            buf, 0,
            src_port=self.src_port,
            dst_port=self.dst_port,
            seq=self.seq,
            ack=self.ack,
            offset_byte=_OFFSET_5_WORDS,
            flags=self.flags,
            window=self.window,
            checksum=0,
            urgent=self.urgent,
        )
        buf[self.HEADER_LEN:] = self.payload
        patch_u16(buf, _CHECKSUM_OFFSET,
                  transport_checksum(src_ip.bytes, dst_ip.bytes, PROTO_TCP, buf))
        return bytes(buf)

    @classmethod
    def from_bytes(cls, raw: Union[bytes, bytearray, memoryview],
                   src_ip: IPv4Address, dst_ip: IPv4Address,
                   verify_checksum: bool = True) -> "TcpSegment":
        view = memoryview(raw)
        if len(view) < cls.HEADER_LEN:
            raise ProtocolError("TCP segment too short")
        fields = _HEADER.unpack(view)
        data_offset = (fields["offset_byte"] >> 4) * 4
        if data_offset < 20 or data_offset > len(view):
            raise ProtocolError("bad TCP data offset")
        if data_offset > cls.HEADER_LEN:
            raise ProtocolError("TCP options unsupported")
        if verify_checksum:
            pseudo = pseudo_header(src_ip.bytes, dst_ip.bytes, PROTO_TCP, len(view))
            if internet_checksum(pseudo, view) != 0:
                raise ProtocolError("TCP checksum failed")
        return cls(
            src_port=fields["src_port"],
            dst_port=fields["dst_port"],
            seq=fields["seq"],
            ack=fields["ack"],
            flags=fields["flags"],
            window=fields["window"],
            payload=bytes(view[data_offset:]),
            urgent=fields["urgent"],
        )

    def flag_names(self) -> str:
        names = []
        for bit, name in ((FLAG_SYN, "SYN"), (FLAG_ACK, "ACK"), (FLAG_FIN, "FIN"),
                          (FLAG_RST, "RST"), (FLAG_PSH, "PSH")):
            if self.flags & bit:
                names.append(name)
        return "|".join(names) or "-"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TcpSegment {self.src_port}->{self.dst_port} {self.flag_names()} "
                f"seq={self.seq} ack={self.ack} len={len(self.payload)}>")


class TcpState(enum.Enum):
    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    CLOSING = "CLOSING"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"


class TcpConnection:
    """One end of a TCP connection.

    Wiring: the owner (host TCP layer or a tunnel endpoint) provides
    ``send_segment(segment)`` which puts a segment on the wire toward
    the peer, then feeds incoming segments to :meth:`handle_segment`.

    Application interface: :meth:`send`, :meth:`close`, the ``on_data``
    / ``on_established`` / ``on_close`` / ``on_reset`` callbacks, and a
    pull-based :meth:`read` for apps that prefer polling.
    """

    MSL_S = 0.5           # deliberately short TIME_WAIT for simulation
    RTO_INIT_S = 1.0
    RTO_MIN_S = 0.2
    RTO_MAX_S = 60.0
    DUPACK_THRESHOLD = 3

    def __init__(
        self,
        sim: Simulator,
        local_ip: IPv4Address,
        local_port: int,
        remote_ip: IPv4Address,
        remote_port: int,
        send_segment: Callable[[TcpSegment], None],
        *,
        mss: int = 1460,
        isn: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self._send_segment = send_segment
        self.mss = mss
        self.state = TcpState.CLOSED

        # --- send side ---
        iss = isn if isn is not None else sim.rng.substream(
            f"tcp.isn.{local_ip}:{local_port}->{remote_ip}:{remote_port}"
        ).randrange(0, _MOD)
        self.iss = iss
        self.snd_una = iss
        self.snd_nxt = iss
        self.snd_wnd = 65535
        self._unacked = bytearray()   # bytes in [snd_una+?, snd_nxt) minus ctl flags
        self._pending = bytearray()   # app bytes not yet sent
        self._fin_queued = False
        self._fin_sent = False

        # --- receive side ---
        self.rcv_nxt = 0
        self.rcv_wnd = 65535
        self._reasm: dict[int, bytes] = {}
        self._recv_buffer = bytearray()

        # --- congestion control ---
        self.cwnd = float(2 * mss)
        self.ssthresh = float(64 * 1024)
        self._dupacks = 0

        # --- RTT / RTO ---
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = self.RTO_INIT_S
        self._rtx_timer: Optional[Event] = None
        self._rtt_probe: Optional[tuple[int, float]] = None  # (seq expected to ack, t_sent)
        self._time_wait_timer: Optional[Event] = None

        # --- callbacks ---
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_established: Optional[Callable[[], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        self.on_reset: Optional[Callable[[], None]] = None

        # --- statistics (experiments read these) ---
        self.retransmissions = 0
        self.timeouts = 0
        self._consecutive_timeouts = 0
        self.fast_retransmits = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.segments_sent = 0
        self.segments_received = 0
        # Last frame lineage this connection touched (write-only from the
        # simulation's point of view): lets a timer-driven retransmission,
        # which runs outside any delivery context, still attach its hops
        # to the flow it belongs to.
        self._lineage_hint: Optional[int] = None

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def four_tuple(self) -> tuple[IPv4Address, int, IPv4Address, int]:
        return (self.local_ip, self.local_port, self.remote_ip, self.remote_port)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TcpConnection {self.local_ip}:{self.local_port} -> "
                f"{self.remote_ip}:{self.remote_port} {self.state.value}>")

    # ------------------------------------------------------------------
    # opening
    # ------------------------------------------------------------------
    def connect(self) -> None:
        """Active open: send SYN."""
        if self.state is not TcpState.CLOSED:
            raise SocketError(f"connect() in state {self.state.value}")
        self.state = TcpState.SYN_SENT
        self._transmit(FLAG_SYN, self.snd_nxt, b"")
        self.snd_nxt = seq_add(self.snd_nxt, 1)  # SYN occupies one seq
        self._arm_rtx()

    def accept_syn(self, segment: TcpSegment) -> None:
        """Passive open: adopt a received SYN (called by the listener)."""
        if self.state is not TcpState.CLOSED:
            raise SocketError(f"accept_syn() in state {self.state.value}")
        self.rcv_nxt = seq_add(segment.seq, 1)
        self.snd_wnd = segment.window
        self.state = TcpState.SYN_RCVD
        self._transmit(FLAG_SYN | FLAG_ACK, self.snd_nxt, b"")
        self.snd_nxt = seq_add(self.snd_nxt, 1)
        self._arm_rtx()

    # ------------------------------------------------------------------
    # application API
    # ------------------------------------------------------------------
    def send(self, data: bytes) -> None:
        """Queue application bytes for transmission."""
        if self.state in (TcpState.CLOSED, TcpState.LISTEN):
            raise SocketError("send() on unopened connection")
        if self._fin_queued:
            raise SocketError("send() after close()")
        if not data:
            return
        self._pending.extend(data)
        self._try_send()

    def close(self) -> None:
        """Graceful close: FIN once queued data drains."""
        if self.state in (TcpState.CLOSED, TcpState.TIME_WAIT):
            return
        if self._fin_queued:
            return
        self._fin_queued = True
        self._try_send()

    def abort(self) -> None:
        """Hard close: RST to the peer, immediate teardown."""
        if self.state not in (TcpState.CLOSED,):
            self._transmit(FLAG_RST | FLAG_ACK, self.snd_nxt, b"")
        self._teardown(reset=False)

    def read(self, max_bytes: Optional[int] = None) -> bytes:
        """Pull buffered received bytes (for apps not using ``on_data``)."""
        if max_bytes is None:
            out = bytes(self._recv_buffer)
            self._recv_buffer.clear()
        else:
            out = bytes(self._recv_buffer[:max_bytes])
            del self._recv_buffer[:max_bytes]
        return out

    @property
    def established(self) -> bool:
        return self.state is TcpState.ESTABLISHED

    @property
    def closed(self) -> bool:
        return self.state is TcpState.CLOSED

    @property
    def flight_size(self) -> int:
        return (self.snd_nxt - self.snd_una) % _MOD

    @property
    def queued_bytes(self) -> int:
        """Unsent application bytes (tunnel-latency diagnostics)."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # segment transmission
    # ------------------------------------------------------------------
    def _transmit(self, flags: int, seq: int, payload: bytes) -> None:
        seg = TcpSegment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=seq,
            ack=self.rcv_nxt,
            flags=flags,
            window=self.rcv_wnd,
            payload=payload,
        )
        self.segments_sent += 1
        self.bytes_sent += len(payload)
        m = obs_metrics()
        if m is not None:
            m.incr("tcp.segments_sent")
            m.incr("tcp.bytes_sent", len(payload))
        rec = flight_recorder()
        if rec is not None:
            tid = rec.current()
            if tid is None:
                tid = self._lineage_hint
            else:
                self._lineage_hint = tid
            if tid is not None:
                rec.hop("tcp", "tx", trace_id=tid,
                        host=f"{self.local_ip}:{self.local_port}",
                        t=self.sim.now, flags=seg.flag_names(), seq=seq,
                        bytes=len(payload))
        self._send_segment(seg)

    def _send_ack(self) -> None:
        self._transmit(FLAG_ACK, self.snd_nxt, b"")

    def _usable_window(self) -> int:
        wnd = min(int(self.cwnd), self.snd_wnd)
        return max(0, wnd - self.flight_size)

    def _try_send(self) -> None:
        """Push pending bytes within the congestion/advertised window."""
        if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT,
                              TcpState.FIN_WAIT_1, TcpState.CLOSING,
                              TcpState.LAST_ACK, TcpState.FIN_WAIT_1):
            # Data queued before establishment is sent when we establish.
            if self.state not in (TcpState.SYN_SENT, TcpState.SYN_RCVD):
                return
            return
        sent_any = False
        while self._pending and self._usable_window() > 0:
            chunk = bytes(self._pending[: min(self.mss, self._usable_window())])
            del self._pending[: len(chunk)]
            flags = FLAG_ACK | (FLAG_PSH if not self._pending else 0)
            self._transmit(flags, self.snd_nxt, chunk)
            if self._rtt_probe is None:
                self._rtt_probe = (seq_add(self.snd_nxt, len(chunk)), self.sim.now)
            self.snd_nxt = seq_add(self.snd_nxt, len(chunk))
            self._unacked.extend(chunk)
            sent_any = True
        if self._fin_queued and not self._fin_sent and not self._pending:
            self._transmit(FLAG_FIN | FLAG_ACK, self.snd_nxt, b"")
            self.snd_nxt = seq_add(self.snd_nxt, 1)
            self._fin_sent = True
            if self.state is TcpState.ESTABLISHED:
                self.state = TcpState.FIN_WAIT_1
            elif self.state is TcpState.CLOSE_WAIT:
                self.state = TcpState.LAST_ACK
            sent_any = True
        if sent_any:
            self._arm_rtx()

    # ------------------------------------------------------------------
    # retransmission
    # ------------------------------------------------------------------
    def _arm_rtx(self) -> None:
        if self._rtx_timer is not None:
            self._rtx_timer.cancel()
        self._rtx_timer = self.sim.schedule(self.rto, self._on_rtx_timeout)

    def _cancel_rtx(self) -> None:
        if self._rtx_timer is not None:
            self._rtx_timer.cancel()
            self._rtx_timer = None

    def _on_rtx_timeout(self) -> None:
        if self.state is TcpState.CLOSED or self.flight_size == 0:
            return
        self.timeouts += 1
        self._consecutive_timeouts += 1
        m = obs_metrics()
        if m is not None:
            m.incr("tcp.timeouts")
        if self._consecutive_timeouts > 15:
            # Give up, as real stacks do after ~tcp_retries2 attempts.
            self._teardown(reset=True)
            return
        # Congestion response: multiplicative decrease, restart slow start.
        self.ssthresh = max(self.flight_size / 2.0, 2.0 * self.mss)
        self.cwnd = float(self.mss)
        self._dupacks = 0
        self.rto = min(self.rto * 2.0, self.RTO_MAX_S)
        self._rtt_probe = None  # Karn: no RTT sample across retransmission
        self._retransmit_front()
        self._arm_rtx()

    def _retransmit_front(self) -> None:
        """Resend whatever starts at snd_una (SYN, FIN, or data)."""
        self.retransmissions += 1
        m = obs_metrics()
        if m is not None:
            m.incr("tcp.retransmits")
        rec = flight_recorder()
        if rec is not None and self._lineage_hint is not None:
            rec.hop("tcp", "retransmit", trace_id=self._lineage_hint,
                    host=f"{self.local_ip}:{self.local_port}",
                    t=self.sim.now, seq=self.snd_una, rto=round(self.rto, 3))
        if self.state is TcpState.SYN_SENT:
            self._transmit(FLAG_SYN, self.iss, b"")
            return
        if self.state is TcpState.SYN_RCVD:
            self._transmit(FLAG_SYN | FLAG_ACK, self.iss, b"")
            return
        if self._unacked:
            chunk = bytes(self._unacked[: self.mss])
            self._transmit(FLAG_ACK, self.snd_una, chunk)
        elif self._fin_sent:
            self._transmit(FLAG_FIN | FLAG_ACK, seq_add(self.snd_nxt, -1 % _MOD), b"")

    # ------------------------------------------------------------------
    # reception
    # ------------------------------------------------------------------
    def handle_segment(self, segment: TcpSegment) -> None:
        """Process one incoming segment addressed to this connection."""
        self.segments_received += 1
        m = obs_metrics()
        if m is not None:
            m.incr("tcp.segments_received")
        rec = flight_recorder()
        if rec is not None:
            tid = rec.current()
            if tid is not None:
                self._lineage_hint = tid
                rec.hop("tcp", "rx", trace_id=tid,
                        host=f"{self.local_ip}:{self.local_port}",
                        t=self.sim.now, flags=segment.flag_names(),
                        seq=segment.seq, bytes=len(segment.payload))
        if segment.flags & FLAG_RST:
            self._handle_rst(segment)
            return
        if self.state is TcpState.SYN_SENT:
            self._handle_in_syn_sent(segment)
            return
        if segment.flags & FLAG_SYN:
            # Duplicate SYN (e.g. retransmitted); re-ACK it.
            self._send_ack()
            return
        if segment.flags & FLAG_ACK:
            self._handle_ack(segment)
        if self.state is TcpState.CLOSED:
            return
        if segment.payload:
            self._handle_data(segment)
        if segment.flags & FLAG_FIN:
            self._handle_fin(segment)

    def _handle_rst(self, segment: TcpSegment) -> None:
        self._teardown(reset=True)

    def _handle_in_syn_sent(self, segment: TcpSegment) -> None:
        if segment.flags & FLAG_SYN and segment.flags & FLAG_ACK:
            if segment.ack != self.snd_nxt:
                self.abort()
                return
            self.rcv_nxt = seq_add(segment.seq, 1)
            self.snd_una = segment.ack
            self.snd_wnd = segment.window
            self.state = TcpState.ESTABLISHED
            self._cancel_rtx()
            self.rto = self.RTO_INIT_S
            self._send_ack()
            if self.on_established:
                self.on_established()
            self._try_send()

    def _handle_ack(self, segment: TcpSegment) -> None:
        ack = segment.ack
        self.snd_wnd = segment.window
        if seq_lt(self.snd_una, ack) and seq_le(ack, self.snd_nxt):
            acked = (ack - self.snd_una) % _MOD
            # Account for SYN/FIN sequence slots not present in _unacked.
            data_acked = min(acked, len(self._unacked))
            del self._unacked[:data_acked]
            self.snd_una = ack
            self._dupacks = 0
            self._consecutive_timeouts = 0
            # RTT sample (Karn-safe: probe cleared on retransmission).
            if self._rtt_probe is not None and seq_le(self._rtt_probe[0], ack):
                self._update_rtt(self.sim.now - self._rtt_probe[1])
                self._rtt_probe = None
            # Congestion window growth.
            if self.cwnd < self.ssthresh:
                self.cwnd += min(acked, self.mss)          # slow start
            else:
                self.cwnd += self.mss * self.mss / self.cwnd  # AIMD
            # State transitions driven by our FIN being acked.
            if self._fin_sent and ack == self.snd_nxt:
                if self.state is TcpState.FIN_WAIT_1:
                    self.state = TcpState.FIN_WAIT_2
                elif self.state is TcpState.CLOSING:
                    self._enter_time_wait()
                elif self.state is TcpState.LAST_ACK:
                    self._teardown(reset=False)
                    return
            if self.state is TcpState.SYN_RCVD:
                self.state = TcpState.ESTABLISHED
                self.rto = self.RTO_INIT_S
                if self.on_established:
                    self.on_established()
            if self.flight_size == 0:
                self._cancel_rtx()
                self.rto = max(self.RTO_MIN_S, min(self.rto, self._computed_rto()))
            else:
                self._arm_rtx()
            self._try_send()
        elif ack == self.snd_una and self.flight_size > 0 and not segment.payload:
            self._dupacks += 1
            if self._dupacks == self.DUPACK_THRESHOLD:
                # Fast retransmit / simplified fast recovery.
                self.fast_retransmits += 1
                m = obs_metrics()
                if m is not None:
                    m.incr("tcp.fast_retransmits")
                self.ssthresh = max(self.flight_size / 2.0, 2.0 * self.mss)
                self.cwnd = self.ssthresh
                self._retransmit_front()
                self._arm_rtx()

    def _handle_data(self, segment: TcpSegment) -> None:
        seq = segment.seq
        payload = segment.payload
        if seq_lt(seq, self.rcv_nxt):
            # Wholly or partially old data; trim the stale prefix.
            stale = (self.rcv_nxt - seq) % _MOD
            if stale >= len(payload):
                self._send_ack()  # pure duplicate
                return
            payload = payload[stale:]
            seq = self.rcv_nxt
        if seq == self.rcv_nxt:
            self._deliver(payload)
            # Drain any contiguous out-of-order segments.
            while self.rcv_nxt in self._reasm:
                chunk = self._reasm.pop(self.rcv_nxt)
                self._deliver(chunk)
        else:
            self._reasm[seq] = payload
        self._send_ack()

    def _deliver(self, data: bytes) -> None:
        self.bytes_received += len(data)
        self.rcv_nxt = seq_add(self.rcv_nxt, len(data))
        if self.on_data is not None:
            self.on_data(data)
        else:
            self._recv_buffer.extend(data)

    def _handle_fin(self, segment: TcpSegment) -> None:
        fin_seq = seq_add(segment.seq, len(segment.payload))
        if seq_lt(fin_seq, self.rcv_nxt):
            self._send_ack()  # retransmitted FIN; re-ACK so the peer can leave LAST_ACK
            return
        if fin_seq != self.rcv_nxt:
            return  # FIN beyond a hole; wait for retransmission
        self.rcv_nxt = seq_add(self.rcv_nxt, 1)
        self._send_ack()
        if self.state is TcpState.ESTABLISHED:
            self.state = TcpState.CLOSE_WAIT
            if self.on_close:
                self.on_close()
        elif self.state is TcpState.FIN_WAIT_1:
            self.state = TcpState.CLOSING
        elif self.state is TcpState.FIN_WAIT_2:
            self._enter_time_wait()
            if self.on_close:
                self.on_close()

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def _enter_time_wait(self) -> None:
        self.state = TcpState.TIME_WAIT
        self._cancel_rtx()
        self._time_wait_timer = self.sim.schedule(2 * self.MSL_S, self._teardown, False)

    def _teardown(self, reset: bool) -> None:
        prior = self.state
        self.state = TcpState.CLOSED
        self._cancel_rtx()
        if self._time_wait_timer is not None:
            self._time_wait_timer.cancel()
        if reset:
            if self.on_reset:
                self.on_reset()
            elif self.on_close and prior not in (TcpState.CLOSED,):
                self.on_close()

    # ------------------------------------------------------------------
    # RTT estimation (Jacobson/Karels)
    # ------------------------------------------------------------------
    def _update_rtt(self, sample: float) -> None:
        m = obs_metrics()
        if m is not None:
            m.add_time("tcp.rtt", sample)
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = self._computed_rto()

    def _computed_rto(self) -> float:
        if self.srtt is None:
            return self.RTO_INIT_S
        return min(max(self.srtt + 4.0 * self.rttvar, self.RTO_MIN_S), self.RTO_MAX_S)
