"""A minimal DNS: wire format, server zones, and a resolver.

DNS exists in the reproduction because the paper's wired-MITM
comparison (§1.2) lists "spoof DNS requests" as one of the three ways
to get in the middle on a wired network.  The resolver trusts the
first syntactically matching answer — transaction ID and all — which
is precisely the behaviour DNS spoofing exploits
(:mod:`repro.attacks.dns_spoof`).

The format is a simplified DNS (A records only, single question, no
compression); field-for-field fidelity to RFC 1035 adds nothing to the
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.netstack.addressing import IPv4Address
from repro.wire import HeaderSpec, take, u8, u16

__all__ = ["DnsMessage", "DnsZone", "DNS_PORT"]

DNS_PORT = 53

_FLAG_RESPONSE = 0x8000

_HEADER = HeaderSpec(
    "DNS message", ">",
    u16("txn_id"),
    u16("flags"),
    u16("n_answers"),
    u8("name_len"),
)


@dataclass(frozen=True)
class DnsMessage:
    """A query or response for one A record."""

    txn_id: int
    name: str
    is_response: bool = False
    answers: tuple[IPv4Address, ...] = ()

    def to_bytes(self) -> bytes:
        name_raw = self.name.encode("ascii")
        out = bytearray(_HEADER.pack(
            txn_id=self.txn_id,
            flags=_FLAG_RESPONSE if self.is_response else 0,
            n_answers=len(self.answers),
            name_len=len(name_raw),
        ))
        out += name_raw
        for answer in self.answers:
            out += answer.bytes
        return bytes(out)

    @classmethod
    def from_bytes(cls, raw: Union[bytes, bytearray, memoryview]) -> "DnsMessage":
        view = memoryview(raw)
        fields = _HEADER.unpack(view)
        name_view, offset = take(view, _HEADER.size, fields["name_len"], "DNS name")
        name = bytes(name_view).decode("ascii", "replace")
        answers = []
        for _ in range(fields["n_answers"]):
            answer_view, offset = take(view, offset, 4, "DNS answer")
            answers.append(IPv4Address(bytes(answer_view)))
        return cls(
            txn_id=fields["txn_id"],
            name=name,
            is_response=bool(fields["flags"] & _FLAG_RESPONSE),
            answers=tuple(answers),
        )

    @classmethod
    def query(cls, txn_id: int, name: str) -> "DnsMessage":
        return cls(txn_id=txn_id, name=name)

    def answered(self, *ips: IPv4Address) -> "DnsMessage":
        """Build the response to this query."""
        return DnsMessage(txn_id=self.txn_id, name=self.name,
                          is_response=True, answers=tuple(ips))


class DnsZone:
    """The authoritative data a DNS server serves."""

    def __init__(self, records: Optional[dict[str, str]] = None) -> None:
        self._records: dict[str, IPv4Address] = {}
        for name, ip in (records or {}).items():
            self.add(name, ip)

    def add(self, name: str, ip: "IPv4Address | str") -> None:
        self._records[name.lower()] = IPv4Address(ip)

    def resolve(self, name: str) -> Optional[IPv4Address]:
        return self._records.get(name.lower())

    def names(self) -> list[str]:
        return sorted(self._records)

    def __len__(self) -> int:
        return len(self._records)
