"""A minimal DNS: wire format, server zones, and a resolver.

DNS exists in the reproduction because the paper's wired-MITM
comparison (§1.2) lists "spoof DNS requests" as one of the three ways
to get in the middle on a wired network.  The resolver trusts the
first syntactically matching answer — transaction ID and all — which
is precisely the behaviour DNS spoofing exploits
(:mod:`repro.attacks.dns_spoof`).

The format is a simplified DNS (A records only, single question, no
compression); field-for-field fidelity to RFC 1035 adds nothing to the
experiments.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional

from repro.netstack.addressing import IPv4Address
from repro.sim.errors import ProtocolError

__all__ = ["DnsMessage", "DnsZone", "DNS_PORT"]

DNS_PORT = 53

_FLAG_RESPONSE = 0x8000


@dataclass(frozen=True)
class DnsMessage:
    """A query or response for one A record."""

    txn_id: int
    name: str
    is_response: bool = False
    answers: tuple[IPv4Address, ...] = ()

    def to_bytes(self) -> bytes:
        name_raw = self.name.encode("ascii")
        flags = _FLAG_RESPONSE if self.is_response else 0
        out = struct.pack(">HHHB", self.txn_id, flags, len(self.answers), len(name_raw))
        out += name_raw
        for answer in self.answers:
            out += answer.bytes
        return out

    @classmethod
    def from_bytes(cls, raw: bytes) -> "DnsMessage":
        if len(raw) < 7:
            raise ProtocolError("DNS message too short")
        txn_id, flags, n_answers, name_len = struct.unpack(">HHHB", raw[:7])
        offset = 7
        if offset + name_len > len(raw):
            raise ProtocolError("DNS name truncated")
        name = raw[offset:offset + name_len].decode("ascii", "replace")
        offset += name_len
        answers = []
        for _ in range(n_answers):
            if offset + 4 > len(raw):
                raise ProtocolError("DNS answer truncated")
            answers.append(IPv4Address(raw[offset:offset + 4]))
            offset += 4
        return cls(
            txn_id=txn_id,
            name=name,
            is_response=bool(flags & _FLAG_RESPONSE),
            answers=tuple(answers),
        )

    @classmethod
    def query(cls, txn_id: int, name: str) -> "DnsMessage":
        return cls(txn_id=txn_id, name=name)

    def answered(self, *ips: IPv4Address) -> "DnsMessage":
        """Build the response to this query."""
        return DnsMessage(txn_id=self.txn_id, name=self.name,
                          is_response=True, answers=tuple(ips))


class DnsZone:
    """The authoritative data a DNS server serves."""

    def __init__(self, records: Optional[dict[str, str]] = None) -> None:
        self._records: dict[str, IPv4Address] = {}
        for name, ip in (records or {}).items():
            self.add(name, ip)

    def add(self, name: str, ip: "IPv4Address | str") -> None:
        self._records[name.lower()] = IPv4Address(ip)

    def resolve(self, name: str) -> Optional[IPv4Address]:
        return self._records.get(name.lower())

    def names(self) -> list[str]:
        return sorted(self._records)

    def __len__(self) -> int:
        return len(self._records)
