"""A Netfilter/iptables model with connection tracking.

§4.1 of the paper redirects the victim's web traffic with::

    # iptables -t nat -A PREROUTING \\
    #     -p tcp -d Target-IP --dport 80 \\
    #     -j DNAT --to Gateway-IP:10101

This module implements enough of Netfilter to execute that rule
verbatim (see :meth:`repro.hosts.linuxconf.LinuxBox.iptables`): the
five chains, protocol/address/port matching, ACCEPT/DROP/DNAT/
REDIRECT/SNAT targets, and a connection-tracking table so reply
packets are automatically un-NATed — without which the victim's TCP
stack would reject netsed's responses (they would appear to come from
the gateway, not the target web server).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.netstack.addressing import IPv4Address, Network
from repro.netstack.ipv4 import PROTO_ICMP, PROTO_TCP, PROTO_UDP, IPv4Packet
from repro.netstack.tcp import TcpSegment
from repro.netstack.udp import UdpDatagram
from repro.obs.lineage import flight_recorder
from repro.obs.runtime import obs_metrics
from repro.sim.errors import ConfigurationError

__all__ = [
    "Chain",
    "ConnTrack",
    "Netfilter",
    "Rule",
    "TargetAccept",
    "TargetDnat",
    "TargetDrop",
    "TargetRedirect",
    "TargetSnat",
    "Verdict",
]

_PROTO_BY_NAME = {"tcp": PROTO_TCP, "udp": PROTO_UDP, "icmp": PROTO_ICMP}
_NAME_BY_PROTO = {v: k for k, v in _PROTO_BY_NAME.items()}


class Chain(enum.Enum):
    PREROUTING = "PREROUTING"
    INPUT = "INPUT"
    FORWARD = "FORWARD"
    OUTPUT = "OUTPUT"
    POSTROUTING = "POSTROUTING"


class Verdict(enum.Enum):
    ACCEPT = "ACCEPT"
    DROP = "DROP"


# ----------------------------------------------------------------------
# targets
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TargetAccept:
    def __str__(self) -> str:
        return "ACCEPT"


@dataclass(frozen=True)
class TargetDrop:
    def __str__(self) -> str:
        return "DROP"


@dataclass(frozen=True)
class TargetDnat:
    """Rewrite destination — the §4.1 redirect's ``-j DNAT --to ip:port``."""

    to_ip: IPv4Address
    to_port: Optional[int] = None

    def __str__(self) -> str:
        port = f":{self.to_port}" if self.to_port is not None else ""
        return f"DNAT --to {self.to_ip}{port}"


@dataclass(frozen=True)
class TargetRedirect:
    """DNAT to the receiving host itself (``-j REDIRECT --to-port``)."""

    to_port: int

    def __str__(self) -> str:
        return f"REDIRECT --to-port {self.to_port}"


@dataclass(frozen=True)
class TargetSnat:
    """Rewrite source — used by the VPN server to NAT tunnelled clients."""

    to_ip: IPv4Address

    def __str__(self) -> str:
        return f"SNAT --to {self.to_ip}"


Target = TargetAccept | TargetDrop | TargetDnat | TargetRedirect | TargetSnat


# ----------------------------------------------------------------------
# rules
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Rule:
    """One iptables rule: match criteria plus a target.

    Unset criteria match anything, as in iptables.
    """

    target: Target
    proto: Optional[str] = None        # "tcp" | "udp" | "icmp"
    src: Optional[Network] = None
    dst: Optional[Network] = None
    sport: Optional[int] = None
    dport: Optional[int] = None
    in_iface: Optional[str] = None
    out_iface: Optional[str] = None

    def matches(self, packet: IPv4Packet, *, in_iface: Optional[str],
                out_iface: Optional[str]) -> bool:
        if self.proto is not None and packet.proto != _PROTO_BY_NAME[self.proto]:
            return False
        if self.src is not None and packet.src not in self.src:
            return False
        if self.dst is not None and packet.dst not in self.dst:
            return False
        if self.in_iface is not None and in_iface != self.in_iface:
            return False
        if self.out_iface is not None and out_iface != self.out_iface:
            return False
        if self.sport is not None or self.dport is not None:
            ports = _ports_of(packet)
            if ports is None:
                return False
            sport, dport = ports
            if self.sport is not None and sport != self.sport:
                return False
            if self.dport is not None and dport != self.dport:
                return False
        return True

    def __str__(self) -> str:
        parts = []
        if self.proto:
            parts.append(f"-p {self.proto}")
        if self.src:
            parts.append(f"-s {self.src}")
        if self.dst:
            parts.append(f"-d {self.dst}")
        if self.sport is not None:
            parts.append(f"--sport {self.sport}")
        if self.dport is not None:
            parts.append(f"--dport {self.dport}")
        if self.in_iface:
            parts.append(f"-i {self.in_iface}")
        if self.out_iface:
            parts.append(f"-o {self.out_iface}")
        parts.append(f"-j {self.target}")
        return " ".join(parts)


def _ports_of(packet: IPv4Packet) -> Optional[tuple[int, int]]:
    """(sport, dport) for TCP/UDP; (ident, ident) for ICMP echo.

    ICMP echo flows are tracked by their query identifier, as Linux
    conntrack does — the same field appears in request and reply, so it
    fills both "port" slots.
    """
    if packet.proto == PROTO_ICMP:
        if len(packet.payload) >= 8 and packet.payload[0] in (0, 8):
            ident = int.from_bytes(packet.payload[4:6], "big")
            return (ident, ident)
        return None
    if packet.proto not in (PROTO_TCP, PROTO_UDP) or len(packet.payload) < 4:
        return None
    return (
        int.from_bytes(packet.payload[0:2], "big"),
        int.from_bytes(packet.payload[2:4], "big"),
    )


def _rewrite(packet: IPv4Packet, *, src: Optional[IPv4Address] = None,
             sport: Optional[int] = None, dst: Optional[IPv4Address] = None,
             dport: Optional[int] = None) -> IPv4Packet:
    """Rebuild a packet with translated addresses/ports and fixed checksums."""
    new_src = src if src is not None else packet.src
    new_dst = dst if dst is not None else packet.dst
    payload = packet.payload
    if packet.proto == PROTO_TCP:
        seg = TcpSegment.from_bytes(payload, packet.src, packet.dst, verify_checksum=False)
        seg = TcpSegment(
            src_port=sport if sport is not None else seg.src_port,
            dst_port=dport if dport is not None else seg.dst_port,
            seq=seg.seq, ack=seg.ack, flags=seg.flags, window=seg.window,
            payload=seg.payload, urgent=seg.urgent,
        )
        payload = seg.to_bytes(new_src, new_dst)
    elif packet.proto == PROTO_UDP:
        dgram = UdpDatagram.from_bytes(payload, packet.src, packet.dst, verify_checksum=False)
        dgram = UdpDatagram(
            src_port=sport if sport is not None else dgram.src_port,
            dst_port=dport if dport is not None else dgram.dst_port,
            payload=dgram.payload,
        )
        payload = dgram.to_bytes(new_src, new_dst)
    elif packet.proto == PROTO_ICMP and (sport is not None or dport is not None):
        # Rewrite the echo identifier (ICMP NAT).
        from repro.netstack.icmp import IcmpMessage
        msg = IcmpMessage.from_bytes(payload)
        new_ident = sport if sport is not None else dport
        new_rest = ((new_ident & 0xFFFF) << 16) | (msg.rest & 0xFFFF)
        payload = IcmpMessage(msg.icmp_type, msg.code, new_rest, msg.payload).to_bytes()
    return IPv4Packet(src=new_src, dst=new_dst, proto=packet.proto,
                      payload=payload, ttl=packet.ttl, ident=packet.ident, tos=packet.tos)


# ----------------------------------------------------------------------
# connection tracking
# ----------------------------------------------------------------------

_FlowKey = tuple[int, IPv4Address, int, IPv4Address, int]


@dataclass
class _NatEntry:
    """Translation state for one tracked flow."""

    fwd_key: _FlowKey
    rev_key: _FlowKey
    # Forward-direction rewrite (applied to packets matching fwd_key).
    fwd_src: Optional[IPv4Address]
    fwd_sport: Optional[int]
    fwd_dst: Optional[IPv4Address]
    fwd_dport: Optional[int]
    # Reverse-direction rewrite (applied to packets matching rev_key).
    rev_src: Optional[IPv4Address]
    rev_sport: Optional[int]
    rev_dst: Optional[IPv4Address]
    rev_dport: Optional[int]
    last_used: float = 0.0


class ConnTrack:
    """NAT connection tracking: sticky per-flow translations, both ways."""

    TTL_S = 300.0

    def __init__(self) -> None:
        self._by_key: dict[_FlowKey, tuple[_NatEntry, bool]] = {}
        self._next_nat_port = 33000

    def allocate_port(self) -> int:
        port = self._next_nat_port
        self._next_nat_port += 1
        if self._next_nat_port > 60000:
            self._next_nat_port = 33000
        return port

    @staticmethod
    def flow_key(packet: IPv4Packet) -> Optional[_FlowKey]:
        ports = _ports_of(packet)
        if ports is None:
            return None
        return (packet.proto, packet.src, ports[0], packet.dst, ports[1])

    def add(self, entry: _NatEntry, now: float) -> None:
        entry.last_used = now
        self._by_key[entry.fwd_key] = (entry, True)
        self._by_key[entry.rev_key] = (entry, False)

    def translate(self, packet: IPv4Packet, now: float) -> Optional[IPv4Packet]:
        """Apply an existing translation, if this packet belongs to a flow."""
        key = self.flow_key(packet)
        if key is None:
            return None
        hit = self._by_key.get(key)
        if hit is None:
            return None
        entry, forward = hit
        if now - entry.last_used > self.TTL_S:
            self._by_key.pop(entry.fwd_key, None)
            self._by_key.pop(entry.rev_key, None)
            return None
        entry.last_used = now
        if forward:
            return _rewrite(packet, src=entry.fwd_src, sport=entry.fwd_sport,
                            dst=entry.fwd_dst, dport=entry.fwd_dport)
        return _rewrite(packet, src=entry.rev_src, sport=entry.rev_sport,
                        dst=entry.rev_dst, dport=entry.rev_dport)

    def track_dnat(self, packet: IPv4Packet, new_dst: IPv4Address,
                   new_dport: Optional[int], now: float) -> IPv4Packet:
        """Create a DNAT entry for a fresh flow and translate the packet."""
        key = self.flow_key(packet)
        if key is None:  # no ports (e.g. ICMP): translate statelessly
            return _rewrite(packet, dst=new_dst, dport=new_dport)
        proto, src, sport, dst, dport = key
        eff_dport = new_dport if new_dport is not None else dport
        entry = _NatEntry(
            fwd_key=key,
            rev_key=(proto, new_dst, eff_dport, src, sport),
            fwd_src=None, fwd_sport=None, fwd_dst=new_dst, fwd_dport=new_dport,
            rev_src=dst, rev_sport=dport, rev_dst=None, rev_dport=None,
        )
        self.add(entry, now)
        return _rewrite(packet, dst=new_dst, dport=new_dport)

    def track_snat(self, packet: IPv4Packet, new_src: IPv4Address, now: float) -> IPv4Packet:
        """Create an SNAT entry (with port allocation) and translate."""
        key = self.flow_key(packet)
        if key is None:
            return _rewrite(packet, src=new_src)
        proto, src, sport, dst, dport = key
        nat_port = self.allocate_port()
        if proto == PROTO_ICMP:
            # Echo ident is symmetric: both "port" slots carry it, and
            # the reply comes back with the NAT-rewritten ident.
            entry = _NatEntry(
                fwd_key=key,
                rev_key=(proto, dst, nat_port, new_src, nat_port),
                fwd_src=new_src, fwd_sport=nat_port, fwd_dst=None, fwd_dport=None,
                rev_src=None, rev_sport=None, rev_dst=src, rev_dport=sport,
            )
        else:
            entry = _NatEntry(
                fwd_key=key,
                rev_key=(proto, dst, dport, new_src, nat_port),
                fwd_src=new_src, fwd_sport=nat_port, fwd_dst=None, fwd_dport=None,
                rev_src=None, rev_sport=None, rev_dst=src, rev_dport=sport,
            )
        self.add(entry, now)
        return _rewrite(packet, src=new_src, sport=nat_port)

    def __len__(self) -> int:
        # Each flow is indexed under two keys.
        return len({id(e) for e, _ in self._by_key.values()})


# ----------------------------------------------------------------------
# the table
# ----------------------------------------------------------------------

class Netfilter:
    """Per-host chains plus conntrack, traversed by the host's IP path."""

    def __init__(self) -> None:
        self.chains: dict[Chain, list[Rule]] = {chain: [] for chain in Chain}
        self.conntrack = ConnTrack()
        self.counters: dict[Chain, int] = {chain: 0 for chain in Chain}
        self.dropped = 0

    def append(self, chain: Chain, rule: Rule) -> None:
        """``iptables -A`` equivalent."""
        nat_targets = (TargetDnat, TargetRedirect, TargetSnat)
        if isinstance(rule.target, TargetSnat) and chain is not Chain.POSTROUTING:
            raise ConfigurationError("SNAT is only valid in POSTROUTING")
        if isinstance(rule.target, (TargetDnat, TargetRedirect)) and chain not in (
            Chain.PREROUTING, Chain.OUTPUT
        ):
            raise ConfigurationError("DNAT/REDIRECT only valid in PREROUTING/OUTPUT")
        self.chains[chain].append(rule)

    def flush(self, chain: Optional[Chain] = None) -> None:
        if chain is None:
            for c in Chain:
                self.chains[c].clear()
        else:
            self.chains[chain].clear()

    def process(
        self,
        chain: Chain,
        packet: IPv4Packet,
        now: float,
        *,
        in_iface: Optional[str] = None,
        out_iface: Optional[str] = None,
        local_ip: Optional[IPv4Address] = None,
        nat: bool = True,
    ) -> tuple[Verdict, IPv4Packet, bool]:
        """Run a packet through one chain; returns (verdict, packet', natted).

        NAT semantics follow Linux: conntrack translations for
        established flows apply before the rule list, and a packet is
        NAT-translated **at most once per traversal** of the host — the
        caller passes ``nat=False`` for later chains once a translation
        has happened (otherwise a forwarded SNAT flow would be
        re-translated with a fresh port on every packet, breaking the
        server-side connection lookup).
        """
        self.counters[chain] += 1
        natted = False
        m = obs_metrics()
        if m is not None:
            m.incr("netfilter.traversals")
        if nat and chain in (Chain.PREROUTING, Chain.OUTPUT, Chain.POSTROUTING):
            translated = self.conntrack.translate(packet, now)
            if translated is not None:
                if m is not None:
                    m.incr("netfilter.conntrack_hits")
                self._record_nat_hop(chain, "conntrack", packet, translated, now)
                return Verdict.ACCEPT, translated, True
        for rule in self.chains[chain]:
            if not rule.matches(packet, in_iface=in_iface, out_iface=out_iface):
                continue
            target = rule.target
            if isinstance(target, TargetAccept):
                return Verdict.ACCEPT, packet, natted
            if isinstance(target, TargetDrop):
                self.dropped += 1
                if m is not None:
                    m.incr("netfilter.drops")
                return Verdict.DROP, packet, natted
            if isinstance(target, (TargetDnat, TargetRedirect, TargetSnat)):
                if not nat:
                    continue
                before = packet
                if isinstance(target, TargetDnat):
                    packet = self.conntrack.track_dnat(packet, target.to_ip,
                                                       target.to_port, now)
                    action = "dnat"
                elif isinstance(target, TargetRedirect):
                    if local_ip is None:
                        raise ConfigurationError("REDIRECT needs the local interface IP")
                    packet = self.conntrack.track_dnat(packet, local_ip,
                                                       target.to_port, now)
                    action = "redirect"
                else:
                    packet = self.conntrack.track_snat(packet, target.to_ip, now)
                    action = "snat"
                if m is not None:
                    m.incr("netfilter.snat_hits" if isinstance(target, TargetSnat)
                           else "netfilter.dnat_hits")
                    m.set_gauge("netfilter.conntrack_entries", len(self.conntrack))
                self._record_nat_hop(chain, action, before, packet, now)
                return Verdict.ACCEPT, packet, True
        return Verdict.ACCEPT, packet, natted  # default policy ACCEPT

    @staticmethod
    def _record_nat_hop(chain: Chain, action: str, before: IPv4Packet,
                        after: IPv4Packet, now: float) -> None:
        """Lineage hop for a NAT rewrite (before/after addressing)."""
        rec = flight_recorder()
        if rec is None or rec.current() is None:
            return
        rec.hop("netfilter", action, t=now, chain=chain.value,
                before=f"{before.src}->{before.dst}",
                after=f"{after.src}->{after.dst}")

    def list_rules(self) -> str:
        """``iptables -L``-style dump."""
        lines = []
        for chain in Chain:
            lines.append(f"Chain {chain.value}")
            for rule in self.chains[chain]:
                lines.append(f"  {rule}")
        return "\n".join(lines)
