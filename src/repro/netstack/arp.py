"""ARP: packet format and neighbour cache.

ARP is load-bearing twice in the paper: the rogue bridge is an "ARP
proxy bridge ... established between the two interfaces using
parprouted" (§4.1), and classic wired MITM needs "to spoof DNS
requests or ARP requests" (§1.2).  The protocol has no authentication,
so both are a matter of simply answering.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

from repro.dot11.mac import MacAddress
from repro.netstack.addressing import IPv4Address
from repro.obs.lineage import flight_recorder
from repro.obs.runtime import obs_metrics
from repro.sim.errors import ProtocolError
from repro.wire import HeaderSpec, fixed_bytes, u8, u16

__all__ = ["ArpOp", "ArpPacket", "ArpTable", "record_arp_hop"]


def record_arp_hop(host: str, iface: str, arp: "ArpPacket", t: float) -> None:
    """Attach an ARP-processing hop to the current frame lineage.

    Called by the host when it handles an ARP packet; a no-op unless a
    flight recorder is installed and a frame is being delivered (the
    lineage context carries the id).
    """
    rec = flight_recorder()
    if rec is None or rec.current() is None:
        return
    rec.hop("arp", arp.op.name.lower(), host=host, t=t, iface=iface,
            sender=str(arp.sender_ip), target=str(arp.target_ip))


class ArpOp(enum.IntEnum):
    REQUEST = 1
    REPLY = 2


# htype/ptype/hlen/plen are constants of IPv4-over-Ethernet ARP: the
# spec emits them on encode and rejects anything else on decode.
_PACKET = HeaderSpec(
    "ARP packet", ">",
    u16("htype", const=1),
    u16("ptype", const=0x0800),
    u8("hlen", const=6),
    u8("plen", const=4),
    u16("op"),
    fixed_bytes("sender_mac", 6, enc=lambda m: m.bytes, dec=MacAddress),
    fixed_bytes("sender_ip", 4, enc=lambda a: a.bytes, dec=IPv4Address),
    fixed_bytes("target_mac", 6, enc=lambda m: m.bytes, dec=MacAddress),
    fixed_bytes("target_ip", 4, enc=lambda a: a.bytes, dec=IPv4Address),
)


@dataclass(frozen=True)
class ArpPacket:
    """An ARP packet for IPv4-over-Ethernet (htype 1, ptype 0x0800)."""

    op: ArpOp
    sender_mac: MacAddress
    sender_ip: IPv4Address
    target_mac: MacAddress
    target_ip: IPv4Address

    def to_bytes(self) -> bytes:
        return _PACKET.pack(
            op=int(self.op),
            sender_mac=self.sender_mac,
            sender_ip=self.sender_ip,
            target_mac=self.target_mac,
            target_ip=self.target_ip,
        )

    @classmethod
    def from_bytes(cls, raw: Union[bytes, bytearray, memoryview]) -> "ArpPacket":
        fields = _PACKET.unpack(raw)
        op = fields.pop("op")
        try:
            op_enum = ArpOp(op)
        except ValueError as exc:
            raise ProtocolError(f"unknown ARP op {op}") from exc
        return cls(op=op_enum, **fields)

    @classmethod
    def request(cls, sender_mac: MacAddress, sender_ip: IPv4Address, target_ip: IPv4Address) -> "ArpPacket":
        """Who-has ``target_ip``? Tell ``sender_ip``."""
        return cls(
            op=ArpOp.REQUEST,
            sender_mac=sender_mac,
            sender_ip=sender_ip,
            target_mac=MacAddress(b"\x00" * 6),
            target_ip=target_ip,
        )

    @classmethod
    def reply(cls, sender_mac: MacAddress, sender_ip: IPv4Address,
              target_mac: MacAddress, target_ip: IPv4Address) -> "ArpPacket":
        """``sender_ip`` is-at ``sender_mac`` — believed without question."""
        return cls(
            op=ArpOp.REPLY,
            sender_mac=sender_mac,
            sender_ip=sender_ip,
            target_mac=target_mac,
            target_ip=target_ip,
        )


class ArpTable:
    """A neighbour cache with entry aging.

    Notably, replies overwrite existing entries unconditionally — the
    behaviour ARP-cache-poisoning (the wired MITM baseline in E-WIRED)
    exploits.
    """

    def __init__(self, ttl_s: float = 600.0) -> None:
        self.ttl_s = ttl_s
        self._entries: dict[IPv4Address, tuple[MacAddress, float]] = {}

    def learn(self, ip: IPv4Address, mac: MacAddress, now: float) -> None:
        m = obs_metrics()
        if m is not None:
            m.incr("arp.learned")
            prior = self._entries.get(ip)
            if prior is not None and prior[0] != mac:
                # The unconditional-overwrite behaviour poisoning exploits.
                m.incr("arp.overwrites")
        self._entries[ip] = (mac, now + self.ttl_s)

    def lookup(self, ip: IPv4Address, now: float) -> Optional[MacAddress]:
        entry = self._entries.get(ip)
        if entry is None:
            m = obs_metrics()
            if m is not None:
                m.incr("arp.lookup_misses")
            return None
        mac, expiry = entry
        if now >= expiry:
            del self._entries[ip]
            return None
        return mac

    def flush(self) -> None:
        self._entries.clear()

    def entries(self, now: float) -> dict[IPv4Address, MacAddress]:
        """Live entries (expired ones pruned)."""
        self._entries = {ip: e for ip, e in self._entries.items() if e[1] > now}
        return {ip: mac for ip, (mac, _) in self._entries.items()}

    def __len__(self) -> int:
        return len(self._entries)
