"""Longest-prefix-match routing table.

Appendix A of the paper configures the rogue gateway with::

    route add -host 10.0.0.23 dev wlan0
    route add -host 10.0.0.1  dev eth1
    route add default gw 10.0.0.1

Host routes (/32), connected routes, and a default route are exactly
what :class:`RoutingTable` supports; the Linux-flavoured front-end
lives in :mod:`repro.hosts.linuxconf`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.netstack.addressing import IPv4Address, Network

__all__ = ["Route", "RoutingTable"]


@dataclass(frozen=True)
class Route:
    """One routing entry.

    ``gateway`` of None means the destination is directly reachable on
    ``interface`` (ARP for the destination itself).
    """

    network: Network
    interface: str
    gateway: Optional[IPv4Address] = None
    metric: int = 0

    def __str__(self) -> str:
        via = f" via {self.gateway}" if self.gateway else ""
        return f"{self.network}{via} dev {self.interface} metric {self.metric}"


class RoutingTable:
    """Longest-prefix-match over a set of :class:`Route` entries."""

    def __init__(self) -> None:
        self._routes: list[Route] = []

    def add(self, route: Route) -> None:
        self._routes.append(route)
        # Keep sorted: longest prefix first, then lowest metric, so
        # lookup is a linear scan that stops at the first match.
        self._routes.sort(key=lambda r: (-r.network.prefix_len, r.metric))

    def add_connected(self, network: Network, interface: str) -> None:
        """Directly-attached subnet (created automatically by ifconfig)."""
        self.add(Route(network=network, interface=interface))

    def add_host(self, ip: IPv4Address, interface: str,
                 gateway: Optional[IPv4Address] = None) -> None:
        """``route add -host`` equivalent: a /32 route."""
        self.add(Route(network=Network(str(ip), 32), interface=interface, gateway=gateway))

    def add_default(self, gateway: IPv4Address, interface: str) -> None:
        """``route add default gw`` equivalent."""
        self.add(Route(network=Network("0.0.0.0", 0), interface=interface, gateway=gateway))

    def remove(self, network: Network) -> bool:
        for route in list(self._routes):
            if route.network == network:
                self._routes.remove(route)
                return True
        return False

    def clear(self) -> None:
        self._routes.clear()

    def lookup(self, dst: IPv4Address) -> Optional[Route]:
        """Best route for ``dst`` (longest prefix, then lowest metric)."""
        for route in self._routes:
            if dst in route.network:
                return route
        return None

    def routes(self) -> list[Route]:
        return list(self._routes)

    def __len__(self) -> int:
        return len(self._routes)

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self._routes) or "<empty routing table>"
