"""IPv4 addresses and CIDR networks."""

from __future__ import annotations

from functools import total_ordering
from typing import Iterator

__all__ = ["IPv4Address", "Network"]


@total_ordering
class IPv4Address:
    """An immutable IPv4 address.

    Accepts dotted-quad strings, 4 raw bytes, a 32-bit int, or another
    address.

    Examples
    --------
    >>> int(IPv4Address("10.0.0.1"))
    167772161
    >>> IPv4Address("10.0.0.1").bytes.hex()
    '0a000001'
    """

    __slots__ = ("_value",)

    def __init__(self, value: "str | bytes | int | IPv4Address") -> None:
        if isinstance(value, IPv4Address):
            v = value._value
        elif isinstance(value, int):
            if not 0 <= value <= 0xFFFFFFFF:
                raise ValueError("IPv4 int out of range")
            v = value
        elif isinstance(value, bytes):
            if len(value) != 4:
                raise ValueError("IPv4 bytes must be length 4")
            v = int.from_bytes(value, "big")
        elif isinstance(value, str):
            parts = value.split(".")
            if len(parts) != 4:
                raise ValueError(f"malformed IPv4 address: {value!r}")
            octets = []
            for p in parts:
                n = int(p)
                if not 0 <= n <= 255:
                    raise ValueError(f"malformed IPv4 address: {value!r}")
                octets.append(n)
            v = int.from_bytes(bytes(octets), "big")
        else:
            raise TypeError(f"cannot build IPv4Address from {type(value).__name__}")
        object.__setattr__(self, "_value", v)

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("IPv4Address is immutable")

    @property
    def bytes(self) -> bytes:
        return self._value.to_bytes(4, "big")

    def __int__(self) -> int:
        return self._value

    def __str__(self) -> str:
        return ".".join(str(b) for b in self.bytes)

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self._value == other._value
        if isinstance(other, str):
            try:
                return self._value == IPv4Address(other)._value
            except ValueError:
                return False
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(self._value)

    @property
    def is_broadcast(self) -> bool:
        return self._value == 0xFFFFFFFF

    @property
    def is_multicast(self) -> bool:
        return 0xE0000000 <= self._value < 0xF0000000

    @property
    def is_unspecified(self) -> bool:
        return self._value == 0


class Network:
    """A CIDR network, e.g. ``Network("10.0.0.0/24")``."""

    __slots__ = ("address", "prefix_len", "_netmask")

    def __init__(self, cidr: "str | Network", prefix_len: int | None = None) -> None:
        if isinstance(cidr, Network):
            address, prefix_len = cidr.address, cidr.prefix_len
        elif prefix_len is None:
            text, _, plen = cidr.partition("/")
            if not plen:
                raise ValueError(f"missing prefix length in {cidr!r}")
            address, prefix_len = IPv4Address(text), int(plen)
        else:
            address = IPv4Address(cidr)
        if not 0 <= prefix_len <= 32:
            raise ValueError("prefix length must be 0..32")
        mask = (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF if prefix_len else 0
        object.__setattr__(self, "prefix_len", prefix_len)
        object.__setattr__(self, "_netmask", mask)
        object.__setattr__(self, "address", IPv4Address(int(address) & mask))

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("Network is immutable")

    @property
    def netmask(self) -> IPv4Address:
        return IPv4Address(self._netmask)

    @property
    def broadcast(self) -> IPv4Address:
        return IPv4Address(int(self.address) | (~self._netmask & 0xFFFFFFFF))

    def __contains__(self, ip: "IPv4Address | str") -> bool:
        return (int(IPv4Address(ip)) & self._netmask) == int(self.address)

    def hosts(self) -> Iterator[IPv4Address]:
        """Usable host addresses (network and broadcast excluded for /0../30)."""
        lo, hi = int(self.address), int(self.broadcast)
        if self.prefix_len >= 31:
            for v in range(lo, hi + 1):
                yield IPv4Address(v)
        else:
            for v in range(lo + 1, hi):
                yield IPv4Address(v)

    def __str__(self) -> str:
        return f"{self.address}/{self.prefix_len}"

    def __repr__(self) -> str:
        return f"Network('{self}')"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Network):
            return self.address == other.address and self.prefix_len == other.prefix_len
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.address, self.prefix_len))

    @classmethod
    def from_ip_netmask(cls, ip: "IPv4Address | str", netmask: "IPv4Address | str") -> "Network":
        mask = int(IPv4Address(netmask))
        prefix = bin(mask).count("1")
        # Validate the mask is contiguous ones.
        if mask != ((0xFFFFFFFF << (32 - prefix)) & 0xFFFFFFFF if prefix else 0):
            raise ValueError(f"non-contiguous netmask {netmask}")
        return cls(str(IPv4Address(int(IPv4Address(ip)) & mask)), prefix)
