"""Path loss and frame-error models.

A log-distance path-loss model with optional log-normal shadowing —
the standard indoor WLAN abstraction — plus a logistic RSSI→frame-
success curve standing in for the modulation/coding chain.  Nothing in
the paper depends on PHY details finer than "closer rogue, stronger
signal, client prefers it", so the models stay deliberately simple and
fully documented.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Position", "LogDistancePathLoss", "FrameLossModel"]


@dataclass(frozen=True)
class Position:
    """A point in the 2-D floor plan, in metres."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def moved(self, dx: float, dy: float) -> "Position":
        return Position(self.x + dx, self.y + dy)


class LogDistancePathLoss:
    """PL(d) = PL(d0) + 10·n·log10(d/d0) [+ shadowing].

    Parameters
    ----------
    exponent:
        Path-loss exponent ``n``; ~2 free space, 3–4 indoors through
        walls.  Default 3.0 (office).
    pl_d0_db:
        Loss at the reference distance d0 = 1 m.  40 dB is the 2.4 GHz
        free-space value.
    shadowing_sigma_db:
        Std-dev of log-normal shadowing; 0 disables it (deterministic
        experiments keep it 0 and inject loss explicitly instead).
    """

    def __init__(
        self,
        exponent: float = 3.0,
        pl_d0_db: float = 40.0,
        shadowing_sigma_db: float = 0.0,
    ) -> None:
        if exponent <= 0:
            raise ValueError("path-loss exponent must be positive")
        self.exponent = exponent
        self.pl_d0_db = pl_d0_db
        self.shadowing_sigma_db = shadowing_sigma_db

    def path_loss_db(self, distance_m: float, rng=None) -> float:
        """Total loss in dB at ``distance_m`` (≥ 0.1 m clamp).

        With ``rng=None`` the result is the deterministic base loss —
        no shadowing draw even when ``shadowing_sigma_db > 0``.  The
        vectorized radio kernel (:mod:`repro.radio.kernel`) relies on
        this to cache the base term bit-identically and add the
        per-call shadowing draw separately, preserving RNG order.
        """
        d = max(distance_m, 0.1)
        loss = self.pl_d0_db + 10.0 * self.exponent * math.log10(d)
        if self.shadowing_sigma_db > 0.0 and rng is not None:
            loss += rng.gauss(0.0, self.shadowing_sigma_db)
        return loss

    def rssi_dbm(self, tx_power_dbm: float, distance_m: float, rng=None) -> float:
        """Received signal strength for a transmit power and distance."""
        return tx_power_dbm - self.path_loss_db(distance_m, rng)


class FrameLossModel:
    """Logistic RSSI → frame-success curve with an extra-loss knob.

    ``p_success = sigmoid((rssi - threshold)/width) * (1 - extra_loss)``

    ``threshold_dbm`` approximates 802.11b receiver sensitivity at
    11 Mb/s (-88 dBm typical for period cards); ``extra_loss`` is the
    experiment-controlled impairment used by the VPN-overhead sweep.
    """

    def __init__(
        self,
        threshold_dbm: float = -88.0,
        width_db: float = 2.0,
        extra_loss: float = 0.0,
    ) -> None:
        if not 0.0 <= extra_loss < 1.0:
            raise ValueError("extra_loss must be in [0, 1)")
        self.threshold_dbm = threshold_dbm
        self.width_db = width_db
        self.extra_loss = extra_loss

    def success_probability(self, rssi_dbm: float) -> float:
        margin = (rssi_dbm - self.threshold_dbm) / self.width_db
        # Clamp to avoid overflow in exp for very strong/weak signals.
        if margin > 30:
            base = 1.0
        elif margin < -30:
            base = 0.0
        else:
            base = 1.0 / (1.0 + math.exp(-margin))
        return base * (1.0 - self.extra_loss)

    def hearable(self, rssi_dbm: float) -> bool:
        """Whether the signal is even detectable (10 dB below threshold)."""
        return rssi_dbm >= self.threshold_dbm - 10.0
