"""Radio-layer substrate: the broadcast medium the paper's risks flow from.

"The difference begins at the Data Link Layer and the inherent
broadcast nature of the wireless physical layer, which doesn't benefit
from the restricted physical access of traditional wired networks"
(§3).  This package models exactly that difference: every transmission
is delivered to every radio in range on an overlapping channel, with
RSSI from a log-distance path-loss model, optional frame loss,
collisions, and jamming.
"""

from repro.radio.interference import Jammer
from repro.radio.kernel import KERNELS, ScalarKernel, VectorKernel
from repro.radio.medium import Medium, RadioPort
from repro.radio.mobility import LinearMobility
from repro.radio.propagation import FrameLossModel, LogDistancePathLoss, Position

__all__ = [
    "FrameLossModel",
    "Jammer",
    "KERNELS",
    "LinearMobility",
    "LogDistancePathLoss",
    "Medium",
    "Position",
    "RadioPort",
    "ScalarKernel",
    "VectorKernel",
]
