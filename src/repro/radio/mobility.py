"""Client mobility.

§3.2's "network promiscuity" is a mobility story: "a computer will
move between administrative domains".  Inside a single site,
:class:`LinearMobility` moves a radio port smoothly so a client can
literally walk from the legitimate AP's coverage into the rogue's —
the physical mechanism that makes rogue capture effortless.  (Roaming
*between* sites/domains is orchestrated at a higher level by
:mod:`repro.workloads.roaming`.)

Every tick goes through :meth:`RadioPort.move_to`, which bumps the
port's position epoch and invalidates the medium's geometry cache —
so a walking client's next transmission always uses fresh RSSI.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.radio.medium import RadioPort
from repro.radio.propagation import Position
from repro.sim.kernel import Simulator

__all__ = ["LinearMobility"]


class LinearMobility:
    """Moves a port through a list of waypoints at constant speed.

    Position updates happen every ``tick_s`` simulated seconds; between
    ticks the position is stationary (fine at WLAN timescales).
    """

    def __init__(
        self,
        sim: Simulator,
        port: RadioPort,
        waypoints: list[Position],
        speed_mps: float = 1.4,
        tick_s: float = 0.5,
        on_arrival: Optional[Callable[[], None]] = None,
    ) -> None:
        if speed_mps <= 0:
            raise ValueError("speed must be positive")
        if not waypoints:
            raise ValueError("need at least one waypoint")
        self.sim = sim
        self.port = port
        self.waypoints = list(waypoints)
        self.speed_mps = speed_mps
        self.tick_s = tick_s
        self.on_arrival = on_arrival
        self._target_idx = 0
        self._stopped = False
        sim.call_soon(self._tick)

    def _tick(self) -> None:
        if self._stopped or self._target_idx >= len(self.waypoints):
            return
        target = self.waypoints[self._target_idx]
        pos = self.port.position
        remaining = pos.distance_to(target)
        step = self.speed_mps * self.tick_s
        if remaining <= step:
            self.port.move_to(target)
            self._target_idx += 1
            if self._target_idx >= len(self.waypoints):
                if self.on_arrival is not None:
                    self.on_arrival()
                return
        else:
            frac = step / remaining
            self.port.move_to(Position(
                pos.x + (target.x - pos.x) * frac,
                pos.y + (target.y - pos.y) * frac,
            ))
        self.sim.schedule(self.tick_s, self._tick)

    def stop(self) -> None:
        self._stopped = True

    @property
    def arrived(self) -> bool:
        return self._target_idx >= len(self.waypoints)
