"""Jamming — one of the §1 threat-taxonomy entries.

"wireless networks are prone to jamming, spoofing, rogue access
points, and possible Man-in-the-middle attacks" (§1).  The
:class:`Jammer` is a duty-cycled wideband noise source: while active
it destroys frames on its channel (and, attenuated, on neighbours)
with a probability scaled by the victim's proximity.

Jamming is not the paper's focus — it appears in the threat-model
experiments only — so the model is intentionally coarse.

Jammer loss is time-dependent (duty cycle) and therefore never cached
by the radio kernel: the medium evaluates :meth:`Jammer.loss_at` per
delivery, and only when at least one jammer is registered — a
jammer-free world pays nothing (``p *= 1.0`` is a float no-op, so the
gate is bit-identical to the old unconditional multiply).
"""

from __future__ import annotations

from repro.dot11.channels import channels_overlap
from repro.radio.medium import Medium, RadioPort
from repro.radio.propagation import Position

__all__ = ["Jammer"]


class Jammer:
    """A duty-cycled channel jammer.

    Parameters
    ----------
    channel:
        Channel being jammed.
    duty_cycle:
        Fraction of time the jammer is on (period = ``period_s``).
    effectiveness:
        Frame-destruction probability at zero distance while on.
    range_m:
        Radius inside which the jammer is effective; effect falls
        linearly to zero at the edge.
    """

    def __init__(
        self,
        medium: Medium,
        position: Position,
        channel: int,
        *,
        duty_cycle: float = 1.0,
        period_s: float = 1.0,
        effectiveness: float = 0.95,
        range_m: float = 50.0,
    ) -> None:
        if not 0.0 <= duty_cycle <= 1.0:
            raise ValueError("duty_cycle must be in [0, 1]")
        self.medium = medium
        self.position = position
        self.channel = channel
        self.duty_cycle = duty_cycle
        self.period_s = period_s
        self.effectiveness = effectiveness
        self.range_m = range_m
        self.active = True
        medium.register_jammer(self)

    def is_on_at(self, t: float) -> bool:
        """Deterministic duty-cycle schedule: on for the first fraction of each period."""
        if not self.active:
            return False
        phase = (t % self.period_s) / self.period_s
        return phase < self.duty_cycle

    def loss_at(self, channel: int, rx: RadioPort, t: float) -> float:
        """Extra frame-loss probability this jammer imposes at ``rx`` now."""
        if not self.is_on_at(t):
            return 0.0
        if not channels_overlap(self.channel, channel):
            return 0.0
        distance = self.position.distance_to(rx.position)
        if distance >= self.range_m:
            return 0.0
        return self.effectiveness * (1.0 - distance / self.range_m)

    def stop(self) -> None:
        self.active = False
