"""Propagation kernels: scalar reference and the vectorized fast path.

:class:`Medium` resolves every transmission against every attached
:class:`~repro.radio.medium.RadioPort`.  The *scalar* kernel is the
original per-(tx, rx) formulation — ``math.hypot`` + ``math.log10`` +
channel rejection recomputed for every pair on every transmission.  It
is kept verbatim as the differential-testing reference
(``Medium(kernel="scalar")``).

The *vector* kernel (the default) makes dense worlds tractable by
never recomputing geometry that has not changed:

* **Pair path-loss rows** — for each transmitter, the base (shadowing-
  free) path loss to every attached port, computed once with the exact
  same scalar ``math`` calls the reference uses and then reused.  Rows
  are maintained incrementally: ``attach`` appends one pair per cached
  row, ``detach`` deletes one column, and a station *move* updates only
  that station's column in every cached row (and drops the mover's own
  row).  NumPy — when available — is used only for IEEE-exact
  operations (elementwise add/sub/compare), never for ``hypot``/
  ``log10``, which differ from ``math`` by 1 ULP on ~1% of inputs and
  would break bit-identity with the scalar reference.
* **Rejection rows** — per transmit channel, the dB of channel
  rejection each receiver applies (``inf`` = deaf), updated in place
  when a port retunes.
* **Delivery plans** — per transmitter, the precomputed fan-out: the
  hearable receivers in port order with their exact RSSI and frame-
  success probability.  A plan is valid while the kernel's version
  counter, the transmitter's power/channel, and the loss-model
  parameters are unchanged.

RNG-order preservation rules (the contract the differential harness
in ``tests/radio/test_kernel_equivalence.py`` proves):

1. With shadowing disabled (the default), the scalar path draws no RNG
   while computing RSSI, so serving RSSI from cache consumes zero
   draws — identical stream.
2. With shadowing enabled, the scalar path draws one ``gauss`` per
   ``rssi_between`` in receiver order; the vector kernel falls back to
   a cached-geometry *scalar-order* loop that makes exactly those
   draws (plans are bypassed entirely).
3. Delivery bernoullis replicate :meth:`SimRandom.bernoulli` exactly,
   including its no-draw shortcuts at ``p <= 0`` and ``p >= 1``.
4. Receivers are always visited in port order, so interleaved draws
   and delivery callbacks occur in the reference sequence.

Invalidation contract: any write to ``port.position`` (routed through
:meth:`RadioPort.move_to`), ``port.channel``, ``port.any_channel``,
``port.enabled`` or ``port.on_receive`` notifies the kernel before the
next transmission resolves, so a cache can never serve stale geometry
or deliver to a receiver that just vanished.  Mutating the loss-model
or path-loss *parameters* mid-run is caught by a per-fan-out parameter
snapshot check.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.dot11.channels import channel_rejection_db, channels_overlap
from repro.obs.runtime import obs_metrics
from repro.sim.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.radio.medium import Medium, RadioPort, _InFlight

try:  # numpy accelerates row arithmetic; plain lists work identically.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

__all__ = ["KERNELS", "DEFAULT_KERNEL", "ScalarKernel", "VectorKernel",
           "make_kernel"]

KERNELS = ("vector", "scalar")

#: Kernel used when ``Medium(kernel=None)``; tests flip this to run
#: whole prebuilt scenarios (which construct their own Medium) under
#: the scalar reference for end-to-end differential comparison.
DEFAULT_KERNEL = "vector"

_DEAF = float("inf")

# Bounds on cached state so a world where every one of 10k stations
# transmits once cannot hold O(N^2) floats; eviction is oldest-first.
_MAX_ROWS = 128
_MAX_PLANS = 128

# Memoized channel rejection: (tx_channel, rx_channel) -> dB, inf=deaf.
_REJECTION: dict = {}


def rejection_db(tx_channel: int, rx_channel: int, any_channel: bool) -> float:
    """Scalar channel rejection with ``inf`` standing in for "deaf".

    Mirrors :meth:`Medium._channel_rejection` (``any_channel`` wins
    before any channel validation, exactly like the reference).
    """
    if any_channel:
        return 0.0
    key = (tx_channel, rx_channel)
    cached = _REJECTION.get(key)
    if cached is None:
        if not channels_overlap(tx_channel, rx_channel):
            cached = _DEAF
        else:
            cached = channel_rejection_db(tx_channel, rx_channel)
        _REJECTION[key] = cached
    return cached


def make_kernel(name: Optional[str], medium: "Medium"):
    """Resolve a kernel by name (``None`` -> :data:`DEFAULT_KERNEL`)."""
    resolved = DEFAULT_KERNEL if name is None else name
    if resolved == "vector":
        return VectorKernel(medium)
    if resolved == "scalar":
        return ScalarKernel(medium)
    raise ConfigurationError(
        f"unknown radio kernel {name!r}; expected one of {KERNELS}")


class ScalarKernel:
    """The original per-pair formulation, kept as the reference path."""

    name = "scalar"

    def __init__(self, medium: "Medium") -> None:
        self.medium = medium

    # -- invalidation hooks: nothing is cached, nothing to do ----------
    def on_attach(self, port) -> None:
        pass

    def on_detach(self, port) -> None:
        pass

    def on_move(self, port) -> None:
        pass

    def on_phy_change(self, port) -> None:
        pass

    # -- propagation ---------------------------------------------------
    def rssi(self, tx: "RadioPort", rx: "RadioPort") -> float:
        medium = self.medium
        distance = tx.position.distance_to(rx.position)
        return medium.path_loss.rssi_dbm(tx.tx_power_dbm, distance,
                                         medium._rng)

    def mark_collisions(self, new: "_InFlight", inflight) -> None:
        medium = self.medium
        for other in inflight:
            if not channels_overlap(new.channel, other.channel):
                continue
            # At each potential receiver, the weaker of two overlapping
            # signals is corrupted; both are if within the capture margin.
            for rx in medium.ports:
                if rx is new.port or rx is other.port:
                    continue
                rssi_new = self.rssi(new.port, rx)
                rssi_other = self.rssi(other.port, rx)
                if not (medium.loss_model.hearable(rssi_new)
                        and medium.loss_model.hearable(rssi_other)):
                    continue
                if rssi_new - rssi_other >= medium.capture_margin_db:
                    other.collide_at(rx)
                elif rssi_other - rssi_new >= medium.capture_margin_db:
                    new.collide_at(rx)
                else:
                    new.collide_at(rx)
                    other.collide_at(rx)

    def fan_out(self, entry: "_InFlight", m, rec, tid) -> None:
        medium = self.medium
        tx_port = entry.port
        for rx in medium.ports:
            if rx is tx_port or not rx.enabled or rx.on_receive is None:
                continue
            rejection = medium._channel_rejection(entry.channel, rx)
            if rejection is None:
                continue
            rssi = self.rssi(tx_port, rx) - rejection
            if not medium.loss_model.hearable(rssi):
                continue
            medium._deliver(entry, rx, rssi, m, rec, tid)


class _TxPlan:
    """One transmitter's precomputed fan-out (hearable targets in port
    order with exact RSSI and base success probability).

    ``sure`` is the delivery list stripped to 3-tuples when *every*
    target has ``p_base >= 1.0``: ``bernoulli(p >= 1)`` draws nothing,
    so the per-target probability check can be hoisted out of the hot
    loop entirely without touching the RNG stream or delivery order.
    It is ``None`` when any target can drop.
    """

    __slots__ = ("version", "tx_power", "channel", "targets", "sure")

    def __init__(self, version, tx_power, channel, targets):
        self.version = version
        self.tx_power = tx_power
        self.channel = channel
        self.targets = targets  # [(rx, on_receive, rssi, p_base), ...]
        if all(t[3] >= 1.0 for t in targets):
            self.sure = [(rx, cb, rssi) for rx, cb, rssi, _p in targets]
        else:
            self.sure = None


class VectorKernel:
    """Cached-geometry, batched fan-out kernel (bit-identical to scalar)."""

    name = "vector"

    def __init__(self, medium: "Medium") -> None:
        self.medium = medium
        self._idx: dict[int, int] = {}          # id(port) -> index
        self._pl_rows: dict[int, object] = {}   # id(tx) -> base-loss row
        self._rej_rows: dict[int, object] = {}  # tx channel -> rejection row
        self._plans: dict[int, _TxPlan] = {}    # id(tx) -> delivery plan
        self._version = 0
        self._params = self._snapshot_params()
        # Engineering counters (plain ints; mirrored to obs when active).
        self.row_builds = 0
        self.row_updates = 0
        self.plan_builds = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # parameter safety net
    # ------------------------------------------------------------------
    def _snapshot_params(self):
        pl, lm = self.medium.path_loss, self.medium.loss_model
        return (pl.exponent, pl.pl_d0_db, lm.threshold_dbm, lm.width_db,
                lm.extra_loss)

    def _check_params(self) -> None:
        params = self._snapshot_params()
        if params != self._params:
            # Model parameters were mutated mid-run (e.g. an extra_loss
            # sweep): every cached product is suspect.  Full reset.
            self._params = params
            self._pl_rows.clear()
            self._plans.clear()
            self._bump()

    def _bump(self) -> None:
        self._version += 1
        self.invalidations += 1

    # ------------------------------------------------------------------
    # invalidation hooks (called by Medium / RadioPort setters)
    # ------------------------------------------------------------------
    def on_attach(self, port) -> None:
        ports = self.medium.ports
        k = len(ports) - 1          # Medium appended before notifying
        self._idx[id(port)] = k
        port_of = self._port_of
        for tx_id, row in self._pl_rows.items():
            value = self._pair_base_loss(port_of(tx_id), port)
            if _np is not None:
                self._pl_rows[tx_id] = _np.append(row, value)
            else:
                row.append(value)
        for channel, row in self._rej_rows.items():
            value = rejection_db(channel, port.channel, port.any_channel)
            if _np is not None:
                self._rej_rows[channel] = _np.append(row, value)
            else:
                row.append(value)
        self._bump()
        self._record_sizes()

    def on_detach(self, port) -> None:
        k = self._idx.pop(id(port), None)
        if k is None:
            return
        for pid, i in self._idx.items():
            if i > k:
                self._idx[pid] = i - 1
        self._pl_rows.pop(id(port), None)
        self._plans.pop(id(port), None)
        for tx_id, row in list(self._pl_rows.items()):
            if _np is not None:
                self._pl_rows[tx_id] = _np.delete(row, k)
            else:
                del row[k]
        for channel, row in list(self._rej_rows.items()):
            if _np is not None:
                self._rej_rows[channel] = _np.delete(row, k)
            else:
                del row[k]
        self._bump()
        self._record_sizes()

    def on_move(self, port) -> None:
        k = self._idx.get(id(port))
        if k is None:
            return
        # Per-station invalidation: refresh only the mover's column in
        # every cached row; the mover's own row is dropped (rebuilt
        # lazily the next time it transmits).
        self._pl_rows.pop(id(port), None)
        port_of = self._port_of
        for tx_id, row in self._pl_rows.items():
            row[k] = self._pair_base_loss(port_of(tx_id), port)
            self.row_updates += 1
        self._bump()

    def on_phy_change(self, port) -> None:
        k = self._idx.get(id(port))
        if k is None:
            return
        for channel, row in self._rej_rows.items():
            row[k] = rejection_db(channel, port.channel, port.any_channel)
        self._bump()

    def _port_of(self, port_id: int) -> "RadioPort":
        return self.medium.ports[self._idx[port_id]]

    def _record_sizes(self) -> None:
        m = obs_metrics()
        if m is not None:
            m.set_gauge("radio.kernel.pl_rows", len(self._pl_rows))
            m.set_gauge("radio.kernel.plans", len(self._plans))

    # ------------------------------------------------------------------
    # cached geometry
    # ------------------------------------------------------------------
    def _pair_base_loss(self, tx, rx) -> float:
        """Base (shadowing-free) path loss, exact scalar computation.

        Delegates to :meth:`LogDistancePathLoss.path_loss_db` with
        ``rng=None`` so the cached value is bit-identical to the base
        term of the reference — including the 0.1 m distance clamp.
        """
        distance = tx.position.distance_to(rx.position)
        return self.medium.path_loss.path_loss_db(distance, None)

    def _row(self, tx):
        row = self._pl_rows.get(id(tx))
        if row is not None:
            return row
        ports = self.medium.ports
        values = [self._pair_base_loss(tx, rx) for rx in ports]
        row = _np.asarray(values) if _np is not None else values
        if id(tx) not in self._idx:
            # The frame was in flight when its transmitter detached.
            # Compute the geometry but never cache it: no on_detach will
            # ever pop a row keyed by a detached port, and on_move /
            # on_attach refresh columns via _port_of on the premise that
            # every cached row's transmitter is attached.
            return row
        if len(self._pl_rows) >= _MAX_ROWS:
            self._pl_rows.pop(next(iter(self._pl_rows)))
        self._pl_rows[id(tx)] = row
        self.row_builds += 1
        m = obs_metrics()
        if m is not None:
            m.incr("radio.kernel.row_builds")
            m.set_gauge("radio.kernel.pl_rows", len(self._pl_rows))
        return row

    def _rej_row(self, channel: int):
        row = self._rej_rows.get(channel)
        if row is not None:
            return row
        values = [rejection_db(channel, rx.channel, rx.any_channel)
                  for rx in self.medium.ports]
        row = _np.asarray(values) if _np is not None else values
        self._rej_rows[channel] = row
        return row

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------
    def rssi(self, tx: "RadioPort", rx: "RadioPort") -> float:
        medium = self.medium
        self._check_params()
        tx_id, rx_id = id(tx), id(rx)
        if tx_id in self._idx and rx_id in self._idx:
            base = float(self._row(tx)[self._idx[rx_id]])
        else:
            # Either side is not attached here: pure geometry, uncached.
            base = self._pair_base_loss(tx, rx)
        sigma = medium.path_loss.shadowing_sigma_db
        if sigma > 0.0:
            # Same op order as the reference: loss = base, loss += gauss.
            base = base + medium._rng.gauss(0.0, sigma)
        return tx.tx_power_dbm - base

    def _plan(self, tx: "RadioPort") -> _TxPlan:
        plan = self._plans.get(id(tx))
        if (plan is not None and plan.version == self._version
                and plan.tx_power == tx.tx_power_dbm
                and plan.channel == tx.channel):
            return plan
        medium = self.medium
        row = self._row(tx)
        rej = self._rej_row(tx.channel)
        power = tx.tx_power_dbm
        ports = medium.ports
        # Scalar reference op order per receiver:
        #   rssi = (power - base_loss) - rejection
        # numpy add/sub/compare are IEEE-exact, so the batched floats
        # are bit-identical to the loop the scalar kernel runs.
        audible = medium.loss_model.threshold_dbm - 10.0
        success = medium.loss_model.success_probability
        targets = []
        if _np is not None:
            rssi_row = (power - row) - rej
            hear = rssi_row >= audible
            tx_k = self._idx.get(id(tx))
            if tx_k is not None:
                hear[tx_k] = False
            for k in _np.flatnonzero(hear):
                rx = ports[k]
                if not rx.enabled or rx.on_receive is None:
                    continue
                rssi = float(rssi_row[k])
                targets.append((rx, rx.on_receive, rssi, success(rssi)))
        else:
            for k, rx in enumerate(ports):
                if rx is tx or not rx.enabled or rx.on_receive is None:
                    continue
                rssi = (power - row[k]) - rej[k]
                if rssi >= audible:
                    targets.append((rx, rx.on_receive, rssi, success(rssi)))
        plan = _TxPlan(self._version, power, tx.channel, targets)
        if id(tx) not in self._idx:
            # Detached mid-flight (see _row): a plan keyed by a freed
            # port's id could be inherited by whatever object recycles
            # the address, so serve it without caching.
            return plan
        if len(self._plans) >= _MAX_PLANS:
            self._plans.pop(next(iter(self._plans)))
        self._plans[id(tx)] = plan
        self.plan_builds += 1
        m = obs_metrics()
        if m is not None:
            m.incr("radio.kernel.plan_builds")
            m.set_gauge("radio.kernel.plans", len(self._plans))
        return plan

    # ------------------------------------------------------------------
    # fan-out
    # ------------------------------------------------------------------
    def fan_out(self, entry: "_InFlight", m, rec, tid) -> None:
        medium = self.medium
        self._check_params()
        tx_port = entry.port
        sigma = medium.path_loss.shadowing_sigma_db
        if sigma > 0.0:
            self._fan_out_shadowed(entry, m, rec, tid, sigma)
            return
        plan = self._plan(tx_port)
        if (m is None and tid is None and entry.collided_at is None
                and not medium._jammers):
            # The hot path: nothing to observe, nothing collided, no
            # jamming — delivery is bernoulli + callback per target.
            # ``rand() >= p`` consumes exactly the draw bernoulli(p)
            # would (and p<=0 / p>=1 skip the draw, like bernoulli).
            frame, channel = entry.frame, entry.channel
            if plan.sure is not None:
                # Every target delivers with certainty: no draws at all
                # (matching bernoulli's p >= 1 shortcut), so the loop is
                # counter + callback and nothing else.
                for rx, on_receive, rssi in plan.sure:
                    rx.rx_frames += 1
                    on_receive(frame, rssi, channel)
                return
            rand = medium._rng._random.random
            for rx, on_receive, rssi, p in plan.targets:
                if p < 1.0:
                    if p <= 0.0 or rand() >= p:
                        rx.rx_dropped_loss += 1
                        continue
                rx.rx_frames += 1
                on_receive(frame, rssi, channel)
            return
        deliver = medium._deliver
        for rx, _on_receive, rssi, p in plan.targets:
            deliver(entry, rx, rssi, m, rec, tid, p_base=p)

    def _fan_out_shadowed(self, entry, m, rec, tid, sigma) -> None:
        # Shadowing draws one gauss per (tx, rx) in receiver order; the
        # plan cache cannot apply, but the geometry cache still does.
        medium = self.medium
        tx_port = entry.port
        row = self._row(tx_port)
        rej = self._rej_row(entry.channel)
        power = tx_port.tx_power_dbm
        gauss = medium._rng.gauss
        hearable = medium.loss_model.hearable
        for k, rx in enumerate(medium.ports):
            if rx is tx_port or not rx.enabled or rx.on_receive is None:
                continue
            rejection = rej[k]
            if rejection == _DEAF:
                continue            # the reference skips before drawing
            loss = row[k] + gauss(0.0, sigma)
            rssi = float((power - loss) - rejection)
            if not hearable(rssi):
                continue
            medium._deliver(entry, rx, rssi, m, rec, tid)

    # ------------------------------------------------------------------
    # collisions
    # ------------------------------------------------------------------
    def mark_collisions(self, new: "_InFlight", inflight) -> None:
        medium = self.medium
        self._check_params()
        sigma = medium.path_loss.shadowing_sigma_db
        for other in inflight:
            if not channels_overlap(new.channel, other.channel):
                continue
            if sigma > 0.0:
                self._collide_pair_shadowed(new, other, sigma)
            else:
                self._collide_pair(new, other)

    def _collide_pair(self, new, other) -> None:
        medium = self.medium
        ports = medium.ports
        margin = medium.capture_margin_db
        audible = medium.loss_model.threshold_dbm - 10.0
        row_new = self._row(new.port)
        row_other = self._row(other.port)
        p_new, p_other = new.port.tx_power_dbm, other.port.tx_power_dbm
        if _np is not None:
            rssi_new = p_new - row_new
            rssi_other = p_other - row_other
            hear = (rssi_new >= audible) & (rssi_other >= audible)
            for key in (id(new.port), id(other.port)):
                k = self._idx.get(key)
                if k is not None:
                    hear[k] = False
            candidates = _np.flatnonzero(hear)
        else:
            rssi_new = [p_new - v for v in row_new]
            rssi_other = [p_other - v for v in row_other]
            excluded = {self._idx.get(id(new.port)),
                        self._idx.get(id(other.port))}
            candidates = [k for k in range(len(ports))
                          if k not in excluded
                          and rssi_new[k] >= audible
                          and rssi_other[k] >= audible]
        for k in candidates:
            rn, ro = float(rssi_new[k]), float(rssi_other[k])
            rx = ports[k]
            if rn - ro >= margin:
                other.collide_at(rx)
            elif ro - rn >= margin:
                new.collide_at(rx)
            else:
                new.collide_at(rx)
                other.collide_at(rx)

    def _collide_pair_shadowed(self, new, other, sigma) -> None:
        # Reference draw order: per receiver, gauss for the new frame
        # then gauss for the one already in flight.
        medium = self.medium
        margin = medium.capture_margin_db
        hearable = medium.loss_model.hearable
        gauss = medium._rng.gauss
        row_new = self._row(new.port)
        row_other = self._row(other.port)
        p_new, p_other = new.port.tx_power_dbm, other.port.tx_power_dbm
        for k, rx in enumerate(medium.ports):
            if rx is new.port or rx is other.port:
                continue
            rssi_new = p_new - (row_new[k] + gauss(0.0, sigma))
            rssi_other = p_other - (row_other[k] + gauss(0.0, sigma))
            if not (hearable(rssi_new) and hearable(rssi_other)):
                continue
            if rssi_new - rssi_other >= margin:
                other.collide_at(rx)
            elif rssi_other - rssi_new >= margin:
                new.collide_at(rx)
            else:
                new.collide_at(rx)
                other.collide_at(rx)

    # ------------------------------------------------------------------
    # introspection (tests, obs)
    # ------------------------------------------------------------------
    def cache_stats(self) -> dict:
        return {
            "version": self._version,
            "pl_rows": len(self._pl_rows),
            "rej_rows": len(self._rej_rows),
            "plans": len(self._plans),
            "row_builds": self.row_builds,
            "row_updates": self.row_updates,
            "plan_builds": self.plan_builds,
            "invalidations": self.invalidations,
        }
