"""The shared broadcast medium.

Every :class:`RadioPort` attached to the :class:`Medium` hears every
transmission whose RSSI clears its sensitivity on an overlapping
channel — legitimate receivers, victims, sniffers, and detectors
alike.  There is no access control here because 802.11b has none;
"Wireless networks allow clients to sniff other people's packets"
(§1.1) falls straight out of the model.

Collision model: two transmissions overlapping in time on overlapping
channels corrupt each other at any receiver that hears both, unless
one is ``capture_margin_db`` stronger (physical-layer capture).  The
model is coarse — no CSMA/CA backoff — because none of the paper's
results depend on contention behaviour; experiments that need a clean
medium simply pace their traffic.

Propagation is resolved by a pluggable *kernel* (see
:mod:`repro.radio.kernel`): the default ``"vector"`` kernel serves
RSSI and fan-out plans from an incrementally maintained station-pair
geometry cache, and ``Medium(kernel="scalar")`` keeps the original
per-pair reference path for differential testing.  The two are
bit-identical — same deliveries, same drops, same RNG draws.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.dot11.channels import channel_rejection_db, channels_overlap
from repro.dot11.frames import Dot11Frame
from repro.obs.lineage import flight_recorder
from repro.obs.runtime import active_profiler, obs_metrics
from repro.radio.kernel import make_kernel
from repro.radio.propagation import FrameLossModel, LogDistancePathLoss, Position
from repro.sim.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.wids.runtime import active_wids

__all__ = ["Medium", "RadioPort"]

# 802.11b long-preamble PLCP overhead.
PREAMBLE_SECONDS = 192e-6
DEFAULT_BITRATE = 11_000_000.0


class RadioPort:
    """One radio attached to the medium.

    NICs (managed, master, or monitor mode) own a port; the port holds
    PHY state (position, channel, power) and the receive callback.
    Monitor-mode behaviour is selected with ``promiscuous=True`` plus
    ``any_channel=True`` if the sniffer hops/records all channels.

    PHY state that the medium's propagation kernel caches against —
    position, channel, ``any_channel``, ``enabled``, ``on_receive`` —
    is exposed through notifying properties: plain assignment (e.g.
    ``port.position = ...`` or ``port.channel = 6``) routes through the
    kernel's invalidation hooks, so cached geometry can never go stale
    silently.  :meth:`move_to` is the explicit movement API; every
    position write funnels through it and bumps :attr:`position_epoch`.
    """

    def __init__(
        self,
        name: str,
        position: Position,
        channel: int,
        *,
        tx_power_dbm: float = 15.0,
        promiscuous: bool = False,
        any_channel: bool = False,
    ) -> None:
        self.name = name
        self._position = position
        self._channel = channel
        self.tx_power_dbm = tx_power_dbm
        self.promiscuous = promiscuous
        self._any_channel = any_channel
        self._enabled = True
        # Set by the owner: called with (frame, rssi_dbm, channel).
        self._on_receive: Optional[Callable[[Dot11Frame, float, int], None]] = None
        self._medium: Optional["Medium"] = None
        #: Bumped on every position write; the geometry-cache staleness
        #: contract tests assert against it.
        self.position_epoch = 0
        # PHY counters.
        self.tx_frames = 0
        self.tx_bytes = 0
        self.rx_frames = 0
        self.rx_dropped_loss = 0
        self.rx_dropped_collision = 0

    # -- kernel-notifying PHY state ------------------------------------
    @property
    def position(self) -> Position:
        return self._position

    @position.setter
    def position(self, value: Position) -> None:
        self.move_to(value)

    def move_to(self, position: Position) -> None:
        """Move the radio; the attached medium's kernel is notified so
        the very next transmission reflects the new geometry."""
        self._position = position
        self.position_epoch += 1
        if self._medium is not None:
            self._medium._kernel.on_move(self)

    @property
    def channel(self) -> int:
        return self._channel

    @channel.setter
    def channel(self, value: int) -> None:
        self._channel = value
        if self._medium is not None:
            self._medium._kernel.on_phy_change(self)

    @property
    def any_channel(self) -> bool:
        return self._any_channel

    @any_channel.setter
    def any_channel(self, value: bool) -> None:
        self._any_channel = value
        if self._medium is not None:
            self._medium._kernel.on_phy_change(self)

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = value
        if self._medium is not None:
            self._medium._kernel.on_phy_change(self)

    @property
    def on_receive(self) -> Optional[Callable[[Dot11Frame, float, int], None]]:
        return self._on_receive

    @on_receive.setter
    def on_receive(self, value) -> None:
        self._on_receive = value
        if self._medium is not None:
            self._medium._kernel.on_phy_change(self)

    # -- lifecycle -----------------------------------------------------
    def attach(self, medium: "Medium") -> None:
        self._medium = medium

    def transmit(self, frame: Dot11Frame, bitrate: float = DEFAULT_BITRATE) -> None:
        """Send a frame onto the air on this port's channel."""
        if self._medium is None:
            raise ConfigurationError(f"radio {self.name!r} is not attached to a medium")
        if not self._enabled:
            return
        self._medium.transmit(self, frame, bitrate)

    def __repr__(self) -> str:
        return f"<RadioPort {self.name} ch={self._channel} at ({self._position.x:.0f},{self._position.y:.0f})>"


class _InFlight:
    """Bookkeeping for a transmission currently occupying the air.

    ``collided_at`` stays ``None`` until a collision is marked — the
    common case allocates no set and the fan-out hot path checks one
    ``is None``.
    """

    __slots__ = ("port", "channel", "start", "end", "frame", "collided_at")

    def __init__(self, port: RadioPort, channel: int, start: float,
                 end: float, frame: Dot11Frame) -> None:
        self.port = port
        self.channel = channel
        self.start = start
        self.end = end
        self.frame = frame
        self.collided_at: Optional[set[RadioPort]] = None

    def collide_at(self, rx: RadioPort) -> None:
        if self.collided_at is None:
            self.collided_at = set()
        self.collided_at.add(rx)


class Medium:
    """The 2.4 GHz band for one simulated site."""

    def __init__(
        self,
        sim: Simulator,
        path_loss: Optional[LogDistancePathLoss] = None,
        loss_model: Optional[FrameLossModel] = None,
        *,
        collisions: bool = True,
        capture_margin_db: float = 10.0,
        kernel: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.path_loss = path_loss or LogDistancePathLoss()
        self.loss_model = loss_model or FrameLossModel()
        self.collisions = collisions
        self.capture_margin_db = capture_margin_db
        self.ports: list[RadioPort] = []
        self._inflight: list[_InFlight] = []
        self._rng = sim.rng.substream("radio.medium")
        self._jammers: list = []  # populated by interference.Jammer
        # Per-channel medium reservation (CSMA-style deferral).
        self._busy_until: dict[int, float] = {}
        # Propagation kernel: "vector" (cached geometry, the default)
        # or "scalar" (the per-pair reference path).
        self._kernel = make_kernel(kernel, self)

    @property
    def kernel(self):
        """The active propagation kernel (``.name`` is its identity)."""
        return self._kernel

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def attach(self, port: RadioPort) -> RadioPort:
        if port in self.ports:
            raise ConfigurationError(f"radio {port.name!r} already attached")
        self.ports.append(port)
        self._kernel.on_attach(port)
        port.attach(self)
        m = obs_metrics()
        if m is not None:
            m.set_gauge("radio.ports", len(self.ports))
        return port

    def detach(self, port: RadioPort) -> None:
        if port in self.ports:
            # Kernel first, while its port index is still aligned.
            self._kernel.on_detach(port)
            self.ports.remove(port)
            # Clear the back-reference so a detached port cannot keep
            # transmitting into this medium through a stale handle.
            port._medium = None
            m = obs_metrics()
            if m is not None:
                m.set_gauge("radio.ports", len(self.ports))

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def airtime(self, frame: Dot11Frame, bitrate: float) -> float:
        return PREAMBLE_SECONDS + frame.air_bytes() * 8.0 / bitrate

    def rssi_between(self, tx: RadioPort, rx: RadioPort) -> float:
        """RSSI at ``rx`` for a transmission from ``tx`` (before channel rejection)."""
        return self._kernel.rssi(tx, rx)

    def transmit(self, tx_port: RadioPort, frame: Dot11Frame, bitrate: float,
                 *, carrier_sense: bool = True) -> None:
        """Put a frame on the air, deferring while the channel is busy.

        Deferral models CSMA/CA coarsely: a transmitter waits for the
        latest reservation on any overlapping channel, plus a small
        random backoff.  ``carrier_sense=False`` transmits immediately
        (a misbehaving injector), risking collisions.
        """
        now = self.sim.now
        duration = self.airtime(frame, bitrate)
        start = now
        if carrier_sense:
            for ch, until in self._busy_until.items():
                if until > start and channels_overlap(ch, tx_port.channel):
                    start = until
            if start > now:
                start += self._rng.uniform(50e-6, 400e-6)  # DIFS + backoff slots
        m = obs_metrics()
        if m is not None:
            m.incr("radio.transmissions")
            if start > now:
                m.incr("radio.deferrals")
        rec = flight_recorder()
        if rec is not None:
            if frame.trace_id is None:
                # First transmission: open the lineage (parented to the
                # frame whose delivery caused this one, if any) and keep
                # the as-transmitted bytes for pcap export.
                frame.trace_id = rec.begin("dot11", tx_port.name, now)
                if rec.capture_bytes:
                    with rec.suspended():
                        raw = frame.to_bytes()
                    rec.attach_raw(frame.trace_id, raw)
            rec.hop("radio", "tx", trace_id=frame.trace_id,
                    host=tx_port.name, t=now, channel=tx_port.channel,
                    subtype=frame.subtype.name, src=str(frame.addr2),
                    dst=str(frame.addr1), bytes=frame.air_bytes(),
                    retry=frame.retry, deferred=start > now)
        self._busy_until[tx_port.channel] = max(
            self._busy_until.get(tx_port.channel, 0.0), start + duration
        )
        if start > now:
            self.sim.schedule_at(start, self._begin_tx, tx_port, frame, duration)
        else:
            self._begin_tx(tx_port, frame, duration)

    def _begin_tx(self, tx_port: RadioPort, frame: Dot11Frame, duration: float) -> None:
        now = self.sim.now
        entry = _InFlight(tx_port, tx_port.channel, now, now + duration, frame)
        tx_port.tx_frames += 1
        tx_port.tx_bytes += frame.air_bytes()
        if self.collisions:
            self._mark_collisions(entry)
        self._inflight.append(entry)
        self.sim.schedule(duration, self._complete, entry)

    def _mark_collisions(self, new: _InFlight) -> None:
        """Resolve time-overlap between ``new`` and frames already in the air."""
        self._inflight = [e for e in self._inflight if e.end > self.sim.now]
        if self._inflight:
            self._kernel.mark_collisions(new, self._inflight)

    def _complete(self, entry: _InFlight) -> None:
        """Deliver a finished transmission to every eligible receiver."""
        prof = active_profiler()
        if prof is None:
            self._fan_out(entry)
        else:
            with prof.span("radio.fanout"):
                self._fan_out(entry)

    def _fan_out(self, entry: _InFlight) -> None:
        if entry in self._inflight:
            self._inflight.remove(entry)
        # Offer the frame to the ambient WIDS watch *before* any
        # per-receiver work: no RNG has been drawn for this delivery
        # yet, so observing here cannot perturb the world (the same
        # zero-perturbation placement the determinism goldens pin).
        wids = active_wids()
        if wids is not None:
            wids.offer(self, entry.frame, entry.channel, self.sim.now)
        m = obs_metrics()
        rec = flight_recorder()
        tid = entry.frame.trace_id if rec is not None else None
        self._kernel.fan_out(entry, m, rec, tid)

    def _deliver(self, entry: _InFlight, rx: RadioPort, rssi: float,
                 m, rec, tid, p_base: Optional[float] = None) -> None:
        """Resolve one (hearable) receiver: collision, loss, delivery.

        Shared by both kernels so the observable per-receiver sequence
        — counters, metrics, recorder hops, the bernoulli draw, the
        callback — cannot drift between them.  ``p_base`` lets the
        vector kernel supply the success probability it precomputed
        from the identical RSSI (bit-equal to recomputing it here).
        """
        collided = entry.collided_at
        if collided is not None and rx in collided:
            rx.rx_dropped_collision += 1
            if m is not None:
                m.incr("radio.drops.collision")
            if tid is not None:
                rec.hop("radio", "drop.collision", trace_id=tid,
                        host=rx.name, t=self.sim.now)
            return
        p_ok = self.loss_model.success_probability(rssi) if p_base is None \
            else p_base
        if self._jammers:
            # p *= 1.0 is a float no-op, so gating on "any jammers" is
            # bit-identical to the unconditional multiply.
            p_ok *= 1.0 - self._jamming_loss(entry.channel, rx)
        if not self._rng.bernoulli(p_ok):
            rx.rx_dropped_loss += 1
            if m is not None:
                m.incr("radio.drops.loss")
            if tid is not None:
                rec.hop("radio", "drop.loss", trace_id=tid,
                        host=rx.name, t=self.sim.now,
                        rssi=round(rssi, 1))
            return
        rx.rx_frames += 1
        if m is not None:
            m.incr("radio.deliveries")
            m.observe("radio.rssi_dbm", rssi, lo=-100.0, hi=-20.0, bins=40)
        if tid is None:
            rx.on_receive(entry.frame, rssi, entry.channel)
        else:
            rec.hop("radio", "rx", trace_id=tid, host=rx.name,
                    t=self.sim.now, rssi=round(rssi, 1),
                    channel=entry.channel)
            # Everything the receiver does synchronously with this
            # frame — decap, IP, TCP, app, and any frames it sends
            # in response — is causally downstream of it.
            with rec.frame_context(tid):
                rx.on_receive(entry.frame, rssi, entry.channel)

    def _channel_rejection(self, tx_channel: int, rx: RadioPort) -> Optional[float]:
        """dB of attenuation rx applies to tx_channel, or None if deaf to it."""
        if rx.any_channel:
            return 0.0
        if not channels_overlap(tx_channel, rx.channel):
            return None
        return channel_rejection_db(tx_channel, rx.channel)

    def _jamming_loss(self, channel: int, rx: RadioPort) -> float:
        loss = 0.0
        for jammer in self._jammers:
            loss = max(loss, jammer.loss_at(channel, rx, self.sim.now))
        return min(loss, 1.0)

    def register_jammer(self, jammer) -> None:
        self._jammers.append(jammer)
