"""The shared broadcast medium.

Every :class:`RadioPort` attached to the :class:`Medium` hears every
transmission whose RSSI clears its sensitivity on an overlapping
channel — legitimate receivers, victims, sniffers, and detectors
alike.  There is no access control here because 802.11b has none;
"Wireless networks allow clients to sniff other people's packets"
(§1.1) falls straight out of the model.

Collision model: two transmissions overlapping in time on overlapping
channels corrupt each other at any receiver that hears both, unless
one is ``capture_margin_db`` stronger (physical-layer capture).  The
model is coarse — no CSMA/CA backoff — because none of the paper's
results depend on contention behaviour; experiments that need a clean
medium simply pace their traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from repro.dot11.channels import channel_rejection_db, channels_overlap
from repro.dot11.frames import Dot11Frame
from repro.obs.lineage import flight_recorder
from repro.obs.runtime import active_profiler, obs_metrics
from repro.radio.propagation import FrameLossModel, LogDistancePathLoss, Position
from repro.sim.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.wids.runtime import active_wids

__all__ = ["Medium", "RadioPort"]

# 802.11b long-preamble PLCP overhead.
PREAMBLE_SECONDS = 192e-6
DEFAULT_BITRATE = 11_000_000.0


class RadioPort:
    """One radio attached to the medium.

    NICs (managed, master, or monitor mode) own a port; the port holds
    PHY state (position, channel, power) and the receive callback.
    Monitor-mode behaviour is selected with ``promiscuous=True`` plus
    ``any_channel=True`` if the sniffer hops/records all channels.
    """

    def __init__(
        self,
        name: str,
        position: Position,
        channel: int,
        *,
        tx_power_dbm: float = 15.0,
        promiscuous: bool = False,
        any_channel: bool = False,
    ) -> None:
        self.name = name
        self.position = position
        self.channel = channel
        self.tx_power_dbm = tx_power_dbm
        self.promiscuous = promiscuous
        self.any_channel = any_channel
        self.enabled = True
        # Set by the owner: called with (frame, rssi_dbm, channel).
        self.on_receive: Optional[Callable[[Dot11Frame, float, int], None]] = None
        self._medium: Optional["Medium"] = None
        # PHY counters.
        self.tx_frames = 0
        self.tx_bytes = 0
        self.rx_frames = 0
        self.rx_dropped_loss = 0
        self.rx_dropped_collision = 0

    def attach(self, medium: "Medium") -> None:
        self._medium = medium

    def transmit(self, frame: Dot11Frame, bitrate: float = DEFAULT_BITRATE) -> None:
        """Send a frame onto the air on this port's channel."""
        if self._medium is None:
            raise ConfigurationError(f"radio {self.name!r} is not attached to a medium")
        if not self.enabled:
            return
        self._medium.transmit(self, frame, bitrate)

    def __repr__(self) -> str:
        return f"<RadioPort {self.name} ch={self.channel} at ({self.position.x:.0f},{self.position.y:.0f})>"


@dataclass
class _InFlight:
    """Bookkeeping for a transmission currently occupying the air."""

    port: RadioPort
    channel: int
    start: float
    end: float
    frame: Dot11Frame
    collided_at: set[RadioPort] = field(default_factory=set)


class Medium:
    """The 2.4 GHz band for one simulated site."""

    def __init__(
        self,
        sim: Simulator,
        path_loss: Optional[LogDistancePathLoss] = None,
        loss_model: Optional[FrameLossModel] = None,
        *,
        collisions: bool = True,
        capture_margin_db: float = 10.0,
    ) -> None:
        self.sim = sim
        self.path_loss = path_loss or LogDistancePathLoss()
        self.loss_model = loss_model or FrameLossModel()
        self.collisions = collisions
        self.capture_margin_db = capture_margin_db
        self.ports: list[RadioPort] = []
        self._inflight: list[_InFlight] = []
        self._rng = sim.rng.substream("radio.medium")
        self._jammers: list = []  # populated by interference.Jammer
        # Per-channel medium reservation (CSMA-style deferral).
        self._busy_until: dict[int, float] = {}

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def attach(self, port: RadioPort) -> RadioPort:
        if port in self.ports:
            raise ConfigurationError(f"radio {port.name!r} already attached")
        self.ports.append(port)
        port.attach(self)
        m = obs_metrics()
        if m is not None:
            m.set_gauge("radio.ports", len(self.ports))
        return port

    def detach(self, port: RadioPort) -> None:
        if port in self.ports:
            self.ports.remove(port)
            # Clear the back-reference so a detached port cannot keep
            # transmitting into this medium through a stale handle.
            port._medium = None
            m = obs_metrics()
            if m is not None:
                m.set_gauge("radio.ports", len(self.ports))

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def airtime(self, frame: Dot11Frame, bitrate: float) -> float:
        return PREAMBLE_SECONDS + frame.air_bytes() * 8.0 / bitrate

    def rssi_between(self, tx: RadioPort, rx: RadioPort) -> float:
        """RSSI at ``rx`` for a transmission from ``tx`` (before channel rejection)."""
        distance = tx.position.distance_to(rx.position)
        return self.path_loss.rssi_dbm(tx.tx_power_dbm, distance, self._rng)

    def transmit(self, tx_port: RadioPort, frame: Dot11Frame, bitrate: float,
                 *, carrier_sense: bool = True) -> None:
        """Put a frame on the air, deferring while the channel is busy.

        Deferral models CSMA/CA coarsely: a transmitter waits for the
        latest reservation on any overlapping channel, plus a small
        random backoff.  ``carrier_sense=False`` transmits immediately
        (a misbehaving injector), risking collisions.
        """
        now = self.sim.now
        duration = self.airtime(frame, bitrate)
        start = now
        if carrier_sense:
            for ch, until in self._busy_until.items():
                if until > start and channels_overlap(ch, tx_port.channel):
                    start = until
            if start > now:
                start += self._rng.uniform(50e-6, 400e-6)  # DIFS + backoff slots
        m = obs_metrics()
        if m is not None:
            m.incr("radio.transmissions")
            if start > now:
                m.incr("radio.deferrals")
        rec = flight_recorder()
        if rec is not None:
            if frame.trace_id is None:
                # First transmission: open the lineage (parented to the
                # frame whose delivery caused this one, if any) and keep
                # the as-transmitted bytes for pcap export.
                frame.trace_id = rec.begin("dot11", tx_port.name, now)
                if rec.capture_bytes:
                    with rec.suspended():
                        raw = frame.to_bytes()
                    rec.attach_raw(frame.trace_id, raw)
            rec.hop("radio", "tx", trace_id=frame.trace_id,
                    host=tx_port.name, t=now, channel=tx_port.channel,
                    subtype=frame.subtype.name, src=str(frame.addr2),
                    dst=str(frame.addr1), bytes=frame.air_bytes(),
                    retry=frame.retry, deferred=start > now)
        self._busy_until[tx_port.channel] = max(
            self._busy_until.get(tx_port.channel, 0.0), start + duration
        )
        if start > now:
            self.sim.schedule_at(start, self._begin_tx, tx_port, frame, duration)
        else:
            self._begin_tx(tx_port, frame, duration)

    def _begin_tx(self, tx_port: RadioPort, frame: Dot11Frame, duration: float) -> None:
        now = self.sim.now
        entry = _InFlight(
            port=tx_port, channel=tx_port.channel, start=now, end=now + duration, frame=frame
        )
        tx_port.tx_frames += 1
        tx_port.tx_bytes += frame.air_bytes()
        if self.collisions:
            self._mark_collisions(entry)
        self._inflight.append(entry)
        self.sim.schedule(duration, self._complete, entry)

    def _mark_collisions(self, new: _InFlight) -> None:
        """Resolve time-overlap between ``new`` and frames already in the air."""
        self._inflight = [e for e in self._inflight if e.end > self.sim.now]
        for other in self._inflight:
            if not channels_overlap(new.channel, other.channel):
                continue
            # At each potential receiver, the weaker of two overlapping
            # signals is corrupted; both are if within the capture margin.
            for rx in self.ports:
                if rx is new.port or rx is other.port:
                    continue
                rssi_new = self.rssi_between(new.port, rx)
                rssi_other = self.rssi_between(other.port, rx)
                if not (self.loss_model.hearable(rssi_new) and self.loss_model.hearable(rssi_other)):
                    continue
                if rssi_new - rssi_other >= self.capture_margin_db:
                    other.collided_at.add(rx)
                elif rssi_other - rssi_new >= self.capture_margin_db:
                    new.collided_at.add(rx)
                else:
                    new.collided_at.add(rx)
                    other.collided_at.add(rx)

    def _complete(self, entry: _InFlight) -> None:
        """Deliver a finished transmission to every eligible receiver."""
        prof = active_profiler()
        if prof is None:
            self._fan_out(entry)
        else:
            with prof.span("radio.fanout"):
                self._fan_out(entry)

    def _fan_out(self, entry: _InFlight) -> None:
        if entry in self._inflight:
            self._inflight.remove(entry)
        # Offer the frame to the ambient WIDS watch *before* any
        # per-receiver work: no RNG has been drawn for this delivery
        # yet, so observing here cannot perturb the world (the same
        # zero-perturbation placement the determinism goldens pin).
        wids = active_wids()
        if wids is not None:
            wids.offer(self, entry.frame, entry.channel, self.sim.now)
        tx_port = entry.port
        m = obs_metrics()
        rec = flight_recorder()
        tid = entry.frame.trace_id if rec is not None else None
        for rx in self.ports:
            if rx is tx_port or not rx.enabled or rx.on_receive is None:
                continue
            rejection = self._channel_rejection(entry.channel, rx)
            if rejection is None:
                continue
            rssi = self.rssi_between(tx_port, rx) - rejection
            if not self.loss_model.hearable(rssi):
                continue
            if rx in entry.collided_at:
                rx.rx_dropped_collision += 1
                if m is not None:
                    m.incr("radio.drops.collision")
                if tid is not None:
                    rec.hop("radio", "drop.collision", trace_id=tid,
                            host=rx.name, t=self.sim.now)
                continue
            p_ok = self.loss_model.success_probability(rssi)
            p_ok *= 1.0 - self._jamming_loss(entry.channel, rx)
            if not self._rng.bernoulli(p_ok):
                rx.rx_dropped_loss += 1
                if m is not None:
                    m.incr("radio.drops.loss")
                if tid is not None:
                    rec.hop("radio", "drop.loss", trace_id=tid,
                            host=rx.name, t=self.sim.now,
                            rssi=round(rssi, 1))
                continue
            rx.rx_frames += 1
            if m is not None:
                m.incr("radio.deliveries")
                m.observe("radio.rssi_dbm", rssi, lo=-100.0, hi=-20.0, bins=40)
            if tid is None:
                rx.on_receive(entry.frame, rssi, entry.channel)
            else:
                rec.hop("radio", "rx", trace_id=tid, host=rx.name,
                        t=self.sim.now, rssi=round(rssi, 1),
                        channel=entry.channel)
                # Everything the receiver does synchronously with this
                # frame — decap, IP, TCP, app, and any frames it sends
                # in response — is causally downstream of it.
                with rec.frame_context(tid):
                    rx.on_receive(entry.frame, rssi, entry.channel)

    def _channel_rejection(self, tx_channel: int, rx: RadioPort) -> Optional[float]:
        """dB of attenuation rx applies to tx_channel, or None if deaf to it."""
        if rx.any_channel:
            return 0.0
        if not channels_overlap(tx_channel, rx.channel):
            return None
        return channel_rejection_db(tx_channel, rx.channel)

    def _jamming_loss(self, channel: int, rx: RadioPort) -> float:
        loss = 0.0
        for jammer in self._jammers:
            loss = max(loss, jammer.loss_at(channel, rx, self.sim.now))
        return min(loss, 1.0)

    def register_jammer(self, jammer) -> None:
        self._jammers.append(jammer)
