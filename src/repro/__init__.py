"""repro — reproduction of "Countering Rogues in Wireless Networks" (ICPP 2003).

A from-scratch Python implementation of everything the paper builds on
and demonstrates: an 802.11b simulator (radio medium, MAC frames, WEP),
a TCP/IP stack with Netfilter, the rogue-AP / parprouted / netsed
man-in-the-middle of §4, the link-layer defenses §2 finds insufficient,
and the PPP-over-SSH VPN solution of §5 — plus the benchmark harness
that regenerates each figure and falsifiable claim.

Quick start::

    from repro import build_corp_scenario

    scenario = build_corp_scenario(seed=1)       # Fig. 1 world
    scenario.arm_download_mitm()                 # Fig. 2 netsed rules
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    outcome = scenario.run_download_experiment(victim)
    print(outcome.compromised)                   # True: MD5 passed on a trojan

See ``examples/`` for runnable walk-throughs and ``benchmarks/`` for
the per-figure reproduction harness.
"""

from repro.core.scenario import (
    CorpScenario,
    HotspotScenario,
    WiredOfficeScenario,
    build_corp_scenario,
    build_hotspot_scenario,
    build_wired_office,
)
from repro.core.threatmodel import Threat, ThreatApplicability, threat_taxonomy
from repro.sim.kernel import Simulator

__version__ = "1.0.0"

__all__ = [
    "CorpScenario",
    "HotspotScenario",
    "Simulator",
    "Threat",
    "ThreatApplicability",
    "WiredOfficeScenario",
    "build_corp_scenario",
    "build_hotspot_scenario",
    "build_wired_office",
    "threat_taxonomy",
    "__version__",
]
