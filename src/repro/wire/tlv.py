"""Length-prefixed and TLV combinators for variable-layout wire formats.

Covers the two variable-length shapes the repo's protocols use:

* back-to-back **TLV** runs — 802.11 information elements (1-byte id,
  1-byte length, up to 255 bytes of value);
* **length-prefixed** slices — the DNS name, DNS answer lists.

Parsing is zero-copy: values come back as ``memoryview`` slices of the
input buffer; the caller materializes (``bytes(...)``) only the pieces
it keeps.  Truncation raises :class:`ProtocolError` with the caller's
own label so protocol error messages stay byte-for-byte what they were
before the migration.
"""

from __future__ import annotations

from typing import Iterator, Union

from repro.sim.errors import ProtocolError

__all__ = ["pack_tlv", "parse_tlv", "take"]

Buffer = Union[bytes, bytearray, memoryview]


def pack_tlv(items: "list[tuple[int, bytes]]") -> bytes:
    """Serialize ``(id, value)`` pairs as back-to-back 1-byte TLVs."""
    out = bytearray()
    for tag, value in items:
        out.append(tag)
        out.append(len(value))
        out += value
    return bytes(out)


def parse_tlv(data: Buffer, label: str = "TLV") -> Iterator[tuple[int, memoryview]]:
    """Iterate ``(id, value-view)`` pairs from a back-to-back TLV run.

    Raises :class:`ProtocolError` (``"truncated {label} header/body"``)
    when the run is cut mid-element.
    """
    view = memoryview(data)
    offset = 0
    end = len(view)
    while offset < end:
        if offset + 2 > end:
            raise ProtocolError(f"truncated {label} header")
        tag, length = view[offset], view[offset + 1]
        offset += 2
        if offset + length > end:
            raise ProtocolError(f"truncated {label} body")
        yield tag, view[offset:offset + length]
        offset += length


def take(view: memoryview, offset: int, n: int, what: str) -> tuple[memoryview, int]:
    """Slice ``n`` bytes at ``offset`` or raise ``"{what} truncated"``.

    Returns ``(slice, new_offset)`` — the building block for
    length-prefixed decodes that must fail loudly on short buffers.
    """
    if offset + n > len(view):
        raise ProtocolError(f"{what} truncated")
    return view[offset:offset + n], offset + n
