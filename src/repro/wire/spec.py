"""Declarative fixed-layout header specs compiled onto :mod:`struct`.

A protocol header is declared once as an ordered list of
:class:`Field` specs and compiled into a single :class:`struct.Struct`
— one C-level pack/unpack call per header, with the declarative layer
handling what the hand-rolled codecs each reimplemented ad hoc:

* value converters (``MacAddress``/``IPv4Address``/enums) applied
  symmetrically on encode and decode;
* constant fields (ARP's htype/ptype/hlen/plen) emitted on encode and
  *validated* on decode;
* truncation turned into a uniform :class:`ProtocolError` carrying the
  protocol's own label ("TCP segment too short", not a bare
  ``struct.error``).

Decode is zero-copy: :meth:`HeaderSpec.unpack` works directly on a
``memoryview`` (``struct.unpack_from`` never copies the buffer), so a
caller can parse a header out of a captured frame and slice the
payload as a view without materializing intermediate buffers.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Optional, Union

from repro.sim.errors import ProtocolError

__all__ = ["Field", "HeaderSpec", "u8", "u16", "u32", "u64", "fixed_bytes"]

Buffer = Union[bytes, bytearray, memoryview]


class Field:
    """One named field of a fixed-layout header.

    ``fmt`` is a single :mod:`struct` format unit (``B``, ``H``, ``I``,
    ``Q``, ``6s``, ...).  ``enc``/``dec`` convert between the domain
    value (a ``MacAddress``, an enum) and the raw struct value; ``const``
    pins the raw value — encoded implicitly, enforced on decode.
    """

    __slots__ = ("name", "fmt", "const", "enc", "dec", "default")

    def __init__(
        self,
        name: str,
        fmt: str,
        *,
        const: Optional[Any] = None,
        default: Optional[Any] = None,
        enc: Optional[Callable[[Any], Any]] = None,
        dec: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        self.name = name
        self.fmt = fmt
        self.const = const
        self.default = default
        self.enc = enc
        self.dec = dec


def u8(name: str, **kw: Any) -> Field:
    return Field(name, "B", **kw)


def u16(name: str, **kw: Any) -> Field:
    return Field(name, "H", **kw)


def u32(name: str, **kw: Any) -> Field:
    return Field(name, "I", **kw)


def u64(name: str, **kw: Any) -> Field:
    return Field(name, "Q", **kw)


def fixed_bytes(name: str, size: int, **kw: Any) -> Field:
    return Field(name, f"{size}s", **kw)


class HeaderSpec:
    """A compiled fixed-layout header: one struct, named declarative fields.

    ``label`` names the protocol in error messages ("TCP segment" →
    "TCP segment too short").  ``byteorder`` is a struct prefix
    (``">"`` network order for the IP suite, ``"<"`` for 802.11).
    """

    __slots__ = ("label", "fields", "size", "_struct", "_encoders", "_decoders")

    def __init__(self, label: str, byteorder: str, *fields: Field) -> None:
        self.label = label
        self.fields = fields
        self._struct = struct.Struct(byteorder + "".join(f.fmt for f in fields))
        self.size = self._struct.size
        # Pre-resolved per-field encode plans: (name, const, enc, default).
        self._encoders = tuple(
            (f.name, f.const, f.enc, f.default) for f in fields
        )
        self._decoders = tuple(
            (f.name, f.const, f.dec) for f in fields
        )

    # ------------------------------------------------------------------
    # encode
    # ------------------------------------------------------------------
    def _raw_values(self, values: dict[str, Any]) -> list[Any]:
        raw = []
        for name, const, enc, default in self._encoders:
            if const is not None:
                raw.append(const)
                continue
            v = values.get(name, default)
            if v is None:
                raise ProtocolError(f"{self.label}: missing field {name!r}")
            raw.append(enc(v) if enc is not None else v)
        return raw

    def pack(self, **values: Any) -> bytes:
        """Encode the header to fresh bytes."""
        return self._struct.pack(*self._raw_values(values))

    def pack_into(self, buf: bytearray, offset: int = 0, **values: Any) -> None:
        """Encode the header in place into an existing buffer."""
        self._struct.pack_into(buf, offset, *self._raw_values(values))

    # ------------------------------------------------------------------
    # decode
    # ------------------------------------------------------------------
    def unpack(self, buf: Buffer, offset: int = 0) -> dict[str, Any]:
        """Decode the header from ``buf`` at ``offset`` — zero-copy.

        Returns a ``{field name: converted value}`` dict; const fields
        are validated and omitted from the result.  Raises
        :class:`ProtocolError` on truncation or const mismatch.
        """
        try:
            raw = self._struct.unpack_from(buf, offset)
        except struct.error as exc:
            raise ProtocolError(f"{self.label} too short") from exc
        out: dict[str, Any] = {}
        for (name, const, dec), value in zip(self._decoders, raw):
            if const is not None:
                if value != const:
                    raise ProtocolError(
                        f"{self.label}: field {name!r} must be {const!r}, got {value!r}"
                    )
                continue
            out[name] = dec(value) if dec is not None else value
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        names = ",".join(f.name for f in self.fields)
        return f"<HeaderSpec {self.label} [{names}] {self.size}B>"
