"""RFC 1071 internet checksum, streaming over ``memoryview`` chunks.

The hand-rolled codecs each computed the checksum by concatenating
throwaway buffers (``pseudo + header + payload``) and walking the copy
byte-pair by byte-pair in Python.  This module replaces both halves:

* :func:`internet_checksum` accepts any number of buffer chunks and
  folds them *in place* — no concatenation — using the ones-complement
  identity ``2**16 ≡ 1 (mod 2**16 - 1)``: a whole chunk interpreted as
  a big-endian integer reduces modulo ``0xFFFF`` to exactly its
  end-around-carry word sum, and :meth:`int.from_bytes` does the heavy
  lifting in C.  Odd chunk boundaries are stitched with a carried
  byte, so splitting data across chunks never changes the result.
* :func:`transport_checksum` prepends the TCP/UDP pseudo-header
  without materializing it next to the segment bytes.
* :func:`patch_u16` drops a computed checksum into an encode
  ``bytearray`` in place — replacing the triple-copy splice
  (``total[:16] + pack(...) + total[18:]``) pattern.

Bit-identical to the classic word-loop implementation (property-tested
against it in ``tests/wire``), including the two ones-complement zero
representations: all-zero input yields ``0xFFFF``, a word sum that is
a nonzero multiple of ``0xFFFF`` yields ``0``.
"""

from __future__ import annotations

import struct
from typing import Union

__all__ = ["internet_checksum", "patch_u16", "pseudo_header", "transport_checksum"]

Buffer = Union[bytes, bytearray, memoryview]

_PSEUDO = struct.Struct(">4s4sBBH")


def internet_checksum(*chunks: Buffer) -> int:
    """Ones-complement checksum of the concatenation of ``chunks``.

    Streams over the chunks without joining them; any chunk may be a
    ``memoryview`` (no copies are made).
    """
    total = 0
    nonzero = False
    carry = -1  # pending odd leading byte from the previous chunk, or -1
    for chunk in chunks:
        view = memoryview(chunk)
        if carry >= 0 and len(view) > 0:
            pair = (carry << 8) | view[0]
            if pair:
                nonzero = True
            total += pair
            view = view[1:]
            carry = -1
        if len(view) & 1:
            carry = view[-1]
            view = view[:-1]
        if len(view):
            word_sum = int.from_bytes(view, "big")
            if word_sum:
                nonzero = True
                total += word_sum % 0xFFFF or 0xFFFF
    if carry > 0:
        total += carry << 8
        nonzero = True
    elif carry == 0:
        pass  # trailing zero byte pads to a zero word: no contribution
    folded = total % 0xFFFF
    if folded == 0 and nonzero:
        folded = 0xFFFF  # ones-complement zero: nonzero data summing to ~0
    return ~folded & 0xFFFF


def pseudo_header(src: bytes, dst: bytes, proto: int, length: int) -> bytes:
    """The 12-byte TCP/UDP pseudo-header over IPv4."""
    return _PSEUDO.pack(src, dst, 0, proto, length)


def transport_checksum(src: bytes, dst: bytes, proto: int, *chunks: Buffer) -> int:
    """Pseudo-header checksum for TCP/UDP without buffer concatenation.

    ``length`` in the pseudo-header is the total size of ``chunks``.
    """
    length = sum(len(c) for c in chunks)
    return internet_checksum(pseudo_header(src, dst, proto, length), *chunks)


def patch_u16(buf: bytearray, offset: int, value: int) -> None:
    """Write a big-endian u16 into an encode buffer in place."""
    buf[offset] = (value >> 8) & 0xFF
    buf[offset + 1] = value & 0xFF
