"""Encode-once caching for immutable frames with many consumers.

One transmitted :class:`~repro.dot11.frames.Dot11Frame` is serialized
by every consumer that touches it — each unicast receiver, the
monitor-mode sniffer, the flight recorder's raw-byte capture, and the
WIDS detectors all call ``to_bytes()`` on the *same* frozen frame.
The bytes cannot differ (frames are treated as immutable; mutation
goes through ``with_body`` which returns a new object), so the first
encode is cached per variant key (``with_fcs`` True/False) and every
later consumer gets the cached buffer back.

Hit/miss counters land under ``codec.encode_cache.*`` when an
observability context is installed — the wire-codec benchmark reports
the hit rate from them.

Invalidation contract: the cache lives in a field excluded from
``dataclasses.replace`` (``init=False``), so every copy-on-write
derivative (``with_body``, ``decremented`` …) starts cold.  Code that
mutates a serialized field of a frame in place — there is none in the
repo — must call :meth:`EncodeCache.clear` (or drop the cache object)
before the next encode.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.obs.runtime import obs_metrics

__all__ = ["EncodeCache"]


class EncodeCache:
    """A tiny per-object ``variant key -> encoded bytes`` cache."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: dict[Hashable, bytes] = {}

    def get(self, key: Hashable) -> Optional[bytes]:
        raw = self._entries.get(key)
        m = obs_metrics()
        if m is not None:
            m.incr("codec.encode_cache.hits" if raw is not None
                   else "codec.encode_cache.lookup_misses")
        return raw

    def put(self, key: Hashable, raw: bytes) -> bytes:
        m = obs_metrics()
        if m is not None:
            m.incr("codec.encode_cache.misses")
        self._entries[key] = raw
        return raw

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
