"""``repro.wire`` — the unified declarative wire-format layer.

Every protocol the simulation puts on a wire or on the air — ethernet,
ARP, IPv4, TCP, UDP, ICMP, DNS, DHCP, 802.11 frames and IEs — encodes
and decodes through this toolkit instead of hand-rolled
``struct.pack`` choreography:

* :class:`HeaderSpec` / :class:`Field` — a fixed-layout header is a
  list of named field specs compiled into one :class:`struct.Struct`;
  constants are validated on decode, converters (MAC/IP objects,
  enums) are applied declaratively.
* :mod:`repro.wire.tlv` — the TLV combinator behind 802.11
  information elements, plus truncation-safe slicing helpers for
  length-prefixed constructs.
* :mod:`repro.wire.checksum` — RFC 1071 internet checksum that
  *streams* over any number of buffers (``memoryview`` included, odd
  boundaries handled), pseudo-header helpers, and in-place checksum
  patching for ``bytearray`` encode buffers.
* :class:`EncodeCache` — encode-once caching for immutable frames
  delivered to many consumers (receivers + sniffer + flight recorder +
  WIDS), with hit/miss counters under ``codec.encode_cache.*``.

The byte-compatibility contract: a migrated codec must emit bytes
bit-identical to the pre-``repro.wire`` implementation — pinned by the
golden vectors in ``tests/wire/golden_vectors.json``.  See DESIGN.md
§11 for the full contract and how to add a new protocol.
"""

from repro.wire.cache import EncodeCache
from repro.wire.checksum import (
    internet_checksum,
    patch_u16,
    pseudo_header,
    transport_checksum,
)
from repro.wire.spec import Field, HeaderSpec, u8, u16, u32, u64, fixed_bytes
from repro.wire.tlv import pack_tlv, parse_tlv, take

__all__ = [
    "EncodeCache",
    "Field",
    "HeaderSpec",
    "fixed_bytes",
    "internet_checksum",
    "pack_tlv",
    "parse_tlv",
    "patch_u16",
    "pseudo_header",
    "take",
    "transport_checksum",
    "u8",
    "u16",
    "u32",
    "u64",
]
