"""WPA-PSK key derivation (shared by the link layer and defense model).

Real WPA uses PBKDF2-SHA1 (4096 rounds) for the PSK and the 802.11i
PRF for the PTK; these labelled-SHA1 constructions preserve the
properties the experiments rely on — determinism, SSID binding, and
PTK dependence on both nonces and both MACs — while the iteration
count (a dictionary-attack cost knob) is out of scope.
"""

from __future__ import annotations

from repro.crypto.hmac import hmac_sha1
from repro.crypto.sha1 import sha1
from repro.dot11.mac import MacAddress

__all__ = ["derive_ptk", "psk_from_passphrase"]


def psk_from_passphrase(passphrase: str, ssid: str) -> bytes:
    """Map passphrase+SSID to a 32-byte PSK."""
    out = b""
    counter = 0
    while len(out) < 32:
        out += sha1(passphrase.encode() + b"\x00" + ssid.encode() + bytes([counter]))
        counter += 1
    return out[:32]


def derive_ptk(psk: bytes, anonce: bytes, snonce: bytes,
               ap_mac: MacAddress, sta_mac: MacAddress) -> bytes:
    """Pairwise transient key: 48 bytes (KCK 16 | TK 16 | MIC keys 8+8)."""
    macs = b"".join(sorted((ap_mac.bytes, sta_mac.bytes)))
    nonces = b"".join(sorted((anonce, snonce)))
    out = b""
    counter = 0
    while len(out) < 48:
        out += hmac_sha1(psk, b"Pairwise key expansion" + macs + nonces + bytes([counter]))
        counter += 1
    return out[:48]
