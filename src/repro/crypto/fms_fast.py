"""Vectorized FMS vote accumulation (numpy fast path).

The FMS vote loop is the reproduction's hottest pure-crypto kernel:
for every weak-IV sample it runs ``A + 3`` KSA swaps and tests the
resolved condition.  The pure-Python version in
:mod:`repro.crypto.fms` is the reference; this module computes the
*same* vote table with the per-sample state matrix vectorized across
samples — one ``(N, 256)`` array, column swaps via fancy indexing —
measured ~2.6× faster at a full 256-sample bucket (the swap's fancy
indexing caps the win; below ~50 samples array-setup overhead makes
the scalar path faster, so
:meth:`repro.crypto.fms.FmsAttack.votes_for_byte` picks automatically).

Per the HPC guides: the optimization came *after* the reference
implementation was correct and property-tested, and equivalence is
enforced by ``tests/crypto/test_fms_fast.py`` comparing both paths on
random inputs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["votes_for_byte_vectorized", "MIN_SAMPLES_FOR_NUMPY"]

#: Bucket size below which the scalar path is faster (measured).
MIN_SAMPLES_FOR_NUMPY = 48


def votes_for_byte_vectorized(samples: list, a: int, known_prefix: bytes) -> list[int]:
    """Vote table for root-key byte ``a`` over FMS ``samples``.

    Exact semantics of :meth:`repro.crypto.fms.FmsAttack.votes_for_byte`:
    ``samples`` hold 3-byte IVs of the weak form ``(a+3, 255, x)`` and
    the observed first keystream byte; ``known_prefix`` is the
    recovered root key so far (length ``a``).
    """
    if len(known_prefix) != a:
        raise ValueError("known_prefix must contain exactly the first a bytes")
    n = len(samples)
    if n == 0:
        return [0] * 256
    rounds = a + 3

    # Per-sample per-packet key prefix: IV (3 bytes) || known root prefix.
    key = np.empty((n, rounds), dtype=np.int64)
    outs = np.empty(n, dtype=np.int64)
    for idx, sample in enumerate(samples):
        iv = sample.iv
        key[idx, 0] = iv[0]
        key[idx, 1] = iv[1]
        key[idx, 2] = iv[2]
        outs[idx] = sample.first_keystream_byte
    for i in range(a):
        key[:, 3 + i] = known_prefix[i]

    # Vectorized partial KSA: one (n, 256) state matrix.
    s = np.tile(np.arange(256, dtype=np.int64), (n, 1))
    j = np.zeros(n, dtype=np.int64)
    rows = np.arange(n)
    for i in range(rounds):
        j = (j + s[:, i] + key[:, i]) & 0xFF
        tmp = s[rows, i].copy()
        s[rows, i] = s[rows, j]
        s[rows, j] = tmp

    s1 = s[:, 1]
    resolved = (s1 < rounds) & (((s1 + s[rows, s1]) % 256) == rounds)
    guesses = (outs - j - s[:, rounds]) & 0xFF
    votes = np.bincount(guesses[resolved], minlength=256)
    return votes.tolist()
