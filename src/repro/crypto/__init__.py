"""From-scratch cryptographic primitives used by the reproduction.

The paper's attack and defense both hinge on *real* cryptography:

* WEP uses RC4 with a 24-bit IV and a CRC-32 integrity check value;
  its famous weakness (Fluhrer–Mantin–Shamir, reference [3] of the
  paper) is what lets an outside attacker "retrieve the WEP key via
  Airsnort" (§4).  We implement RC4, WEP, and the FMS key-recovery
  attack from first principles.
* The download page publishes an MD5SUM; the attack's punchline is
  that the victim's MD5 verification *passes* on the trojaned binary
  because netsed also rewrote the published digest.  MD5 is
  implemented from scratch (RFC 1321).
* The PPP-over-SSH VPN (§5.3) needs a key exchange, a stream cipher and
  a MAC: classic finite-field Diffie–Hellman, RC4, and HMAC-SHA1
  (RFC 2104 / FIPS 180-1), all implemented here.

None of this is intended for production use — it exists so that the
paper's experiments run on genuine cryptographic behaviour rather than
boolean flags.
"""

from repro.crypto.crc import crc32
from repro.crypto.dh import DiffieHellman, DH_GROUP_1536
from repro.crypto.fms import FmsAttack, FmsSample, is_weak_iv
from repro.crypto.hmac import hmac, hmac_md5, hmac_sha1
from repro.crypto.keystore import KeyStore
from repro.crypto.md5 import md5, md5_hexdigest
from repro.crypto.rc4 import RC4, rc4_keystream
from repro.crypto.sha1 import sha1, sha1_hexdigest
from repro.crypto.tkip import MichaelMic, TkipSession
from repro.crypto.wep import WepError, WepKey, wep_decrypt, wep_encrypt

__all__ = [
    "DH_GROUP_1536",
    "DiffieHellman",
    "FmsAttack",
    "FmsSample",
    "KeyStore",
    "MichaelMic",
    "RC4",
    "TkipSession",
    "WepError",
    "WepKey",
    "crc32",
    "hmac",
    "hmac_md5",
    "hmac_sha1",
    "is_weak_iv",
    "md5",
    "md5_hexdigest",
    "rc4_keystream",
    "sha1",
    "sha1_hexdigest",
    "wep_decrypt",
    "wep_encrypt",
]
