"""RC4 stream cipher (key scheduling + PRGA), implemented from scratch.

RC4 is the cipher inside WEP ("WEP utilizes the RC4 stream cipher",
paper §2.1) and the stream cipher we use for the SSH-like VPN
transport.  The implementation deliberately exposes the key-scheduling
algorithm (KSA) state evolution, because the FMS attack
(:mod:`repro.crypto.fms`) reasons about exactly that structure.
"""

from __future__ import annotations

from typing import Iterator

from repro.obs.runtime import active_profiler

__all__ = ["RC4", "rc4_keystream", "ksa", "prga"]


def ksa(key: bytes) -> list[int]:
    """RC4 key-scheduling algorithm: derive the 256-entry permutation.

    This is the stage whose bias for "weak" IVs leaks key bytes
    (Fluhrer, Mantin, Shamir 2001 — the paper's reference [3]).
    """
    if not key:
        raise ValueError("RC4 key must be non-empty")
    s = list(range(256))
    j = 0
    klen = len(key)
    for i in range(256):
        j = (j + s[i] + key[i % klen]) & 0xFF
        s[i], s[j] = s[j], s[i]
    return s


def ksa_partial(key: bytes, rounds: int) -> tuple[list[int], int]:
    """Run only the first ``rounds`` KSA swaps; used by the FMS attack.

    Returns the partial permutation and the running ``j`` value.
    """
    s = list(range(256))
    j = 0
    klen = len(key)
    for i in range(rounds):
        j = (j + s[i] + key[i % klen]) & 0xFF
        s[i], s[j] = s[j], s[i]
    return s, j


def prga(s: list[int]) -> Iterator[int]:
    """RC4 pseudo-random generation algorithm over a scheduled state."""
    s = list(s)
    i = j = 0
    while True:
        i = (i + 1) & 0xFF
        j = (j + s[i]) & 0xFF
        s[i], s[j] = s[j], s[i]
        yield s[(s[i] + s[j]) & 0xFF]


class RC4:
    """Stateful RC4 cipher.

    Encryption and decryption are the same XOR operation; the object
    keeps its keystream position, so a single instance can encrypt a
    sequence of records (as the VPN transport does).

    Examples
    --------
    >>> RC4(b"Key").crypt(b"Plaintext").hex()
    'bbf316e8d940af0ad3'
    """

    def __init__(self, key: bytes) -> None:
        self._gen = prga(ksa(key))

    def keystream(self, n: int) -> bytes:
        """Next ``n`` keystream bytes."""
        g = self._gen
        return bytes(next(g) for _ in range(n))

    def crypt(self, data: bytes) -> bytes:
        """XOR ``data`` with the next keystream bytes (encrypt == decrypt)."""
        prof = active_profiler()
        if prof is None:
            return self._crypt(data)
        with prof.span("crypto.rc4"):
            return self._crypt(data)

    def _crypt(self, data: bytes) -> bytes:
        g = self._gen
        return bytes(b ^ next(g) for b in data)


def rc4_keystream(key: bytes, n: int) -> bytes:
    """First ``n`` keystream bytes for ``key`` (one-shot helper)."""
    return RC4(key).keystream(n)
