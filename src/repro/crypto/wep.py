"""WEP (Wired Equivalent Privacy) encapsulation, from scratch.

WEP as deployed in 802.11b: a per-packet RC4 key formed by prepending a
24-bit IV to the shared root key, and a CRC-32 integrity check value
(ICV) appended to the plaintext before encryption.  The expanded frame
body on the air is::

    IV(3 bytes) | KeyID(1 byte) | RC4( payload | ICV(4 bytes) )

The paper (§2.1) notes WEP's weaknesses "have long been legendary" and
that in the rogue-AP scenario it "provides no protection what so ever":
the rogue either *is* a valid client that was given the key, or
recovers it passively with the FMS attack (:mod:`repro.crypto.fms`).
Both paths are exercised by the E-WEP benchmark.

Key-length note: the paper's example key is the ASCII string
``SECRET``.  Real 40-bit WEP keys are 5 ASCII characters and 104-bit
keys are 13; :meth:`WepKey.from_passphrase` maps an arbitrary string
onto either size by repeating/truncating, the behaviour of the
classic "ASCII key" entry mode on period hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.crc import crc32
from repro.crypto.rc4 import RC4
from repro.sim.errors import IntegrityError

__all__ = ["WepError", "WepKey", "IvGenerator", "wep_encrypt", "wep_decrypt"]

IV_LEN = 3
ICV_LEN = 4
HEADER_LEN = IV_LEN + 1  # IV + KeyID byte


class WepError(IntegrityError):
    """WEP decryption failed (ICV mismatch or malformed body)."""


@dataclass(frozen=True)
class WepKey:
    """A WEP root key (5 bytes = 40-bit or 13 bytes = 104-bit)."""

    key: bytes

    VALID_LENGTHS = (5, 13)

    def __post_init__(self) -> None:
        if len(self.key) not in self.VALID_LENGTHS:
            raise ValueError(
                f"WEP root key must be 5 or 13 bytes, got {len(self.key)}"
            )

    @classmethod
    def from_passphrase(cls, phrase: str, bits: int = 40) -> "WepKey":
        """Map an ASCII passphrase (e.g. the paper's ``SECRET``) to a key.

        Repeats/truncates the phrase to the key length, mirroring the
        ASCII-key entry mode of period consumer equipment.
        """
        length = {40: 5, 104: 13}.get(bits)
        if length is None:
            raise ValueError("bits must be 40 or 104")
        if not phrase:
            raise ValueError("passphrase must be non-empty")
        raw = phrase.encode("ascii")
        repeated = (raw * (length // len(raw) + 1))[:length]
        return cls(repeated)

    @property
    def bits(self) -> int:
        return len(self.key) * 8

    def per_packet_key(self, iv: bytes) -> bytes:
        """The RC4 key actually used on the air: IV || root key."""
        if len(iv) != IV_LEN:
            raise ValueError("WEP IV must be 3 bytes")
        return iv + self.key

    def __repr__(self) -> str:
        return f"WepKey({self.bits}-bit)"


class IvGenerator:
    """IV selection policy.

    ``sequential`` increments a 24-bit counter — the behaviour of many
    period NICs, which is what made weak-IV collection so effective;
    ``random`` draws IVs uniformly.  Both eventually emit FMS-weak IVs;
    sequential cards sweep straight through the weak classes.
    """

    def __init__(self, mode: str = "sequential", start: int = 0, rng=None) -> None:
        if mode not in ("sequential", "random"):
            raise ValueError("mode must be 'sequential' or 'random'")
        if mode == "random" and rng is None:
            raise ValueError("random IV mode requires an rng")
        self.mode = mode
        self._counter = start & 0xFFFFFF
        self._rng = rng

    def next_iv(self) -> bytes:
        if self.mode == "sequential":
            iv = self._counter
            self._counter = (self._counter + 1) & 0xFFFFFF
            return bytes(((iv >> 16) & 0xFF, (iv >> 8) & 0xFF, iv & 0xFF))
        return self._rng.bytes(IV_LEN)


def wep_encrypt(key: WepKey, iv: bytes, plaintext: bytes, key_id: int = 0) -> bytes:
    """Encrypt a frame body: returns ``IV | KeyID | RC4(plaintext | ICV)``."""
    if not 0 <= key_id <= 3:
        raise ValueError("WEP KeyID is 2 bits")
    icv = crc32(plaintext).to_bytes(4, "little")
    cipher = RC4(key.per_packet_key(iv))
    return iv + bytes([key_id << 6]) + cipher.crypt(plaintext + icv)


def wep_decrypt(key: WepKey, body: bytes) -> bytes:
    """Decrypt a WEP frame body and verify the ICV.

    Raises :class:`WepError` if the body is malformed or the ICV fails
    (wrong key, or tampering — though CRC-32 being linear, tampering
    *with* keystream access is trivially fixable by an attacker; see
    the bit-flipping test in ``tests/crypto/test_wep.py``).
    """
    if len(body) < HEADER_LEN + ICV_LEN:
        raise WepError("WEP body too short")
    iv = body[:IV_LEN]
    cipher = RC4(key.per_packet_key(iv))
    decrypted = cipher.crypt(body[HEADER_LEN:])
    plaintext, icv = decrypted[:-ICV_LEN], decrypted[-ICV_LEN:]
    if crc32(plaintext).to_bytes(4, "little") != icv:
        raise WepError("WEP ICV check failed (wrong key or tampered frame)")
    return plaintext


def wep_iv_of(body: bytes) -> bytes:
    """Extract the cleartext IV from an encrypted body (visible to sniffers)."""
    if len(body) < IV_LEN:
        raise WepError("WEP body too short for IV")
    return body[:IV_LEN]


def wep_first_keystream_byte(body: bytes, known_first_plaintext: int = 0xAA) -> int:
    """Recover keystream byte 0 from a ciphertext, given known plaintext.

    802.2 LLC/SNAP encapsulation makes the first payload byte of
    essentially every data frame ``0xAA`` — the leak the FMS attack
    feeds on.
    """
    if len(body) < HEADER_LEN + 1:
        raise WepError("WEP body too short for keystream recovery")
    return body[HEADER_LEN] ^ known_first_plaintext
