"""Fluhrer–Mantin–Shamir (FMS) WEP key recovery — the "Airsnort" attack.

Paper §4: "an outside attacker who has retrieved the WEP key via
Airsnort".  Airsnort implements the FMS attack (the paper's references
[3] and [11]): for *weak* IVs of the form ``(A + 3, 255, X)``, the
first RC4 keystream byte leaks root-key byte ``A`` with probability
≈ 5%, against 1/256 for a wrong guess.  Collect enough samples and a
simple vote recovers the key byte-by-byte.

The first keystream byte is observable because 802.2 LLC/SNAP makes the
first plaintext byte of data frames ``0xAA``
(:func:`repro.crypto.wep.wep_first_keystream_byte`).

Implementation follows the resolved-condition formulation: run the KSA
for the first ``A + 3`` steps using the known key prefix
(IV || recovered-root-prefix); if the partial state satisfies
``S[1] < A + 3`` and ``S[1] + S[S[1]] == A + 3``, the sample votes for
``key[A] = (out - j - S[A + 3]) mod 256``.

Vote tables are plain 256-entry integer lists; profiling shows the
partial KSA (≤ 16 swaps per sample) dominates, and at the sample counts
the benchmarks use (≤ a few hundred thousand) pure Python completes in
well under a second per key byte, so no numpy vectorization is
warranted (guides: measure before optimizing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.obs.runtime import active_profiler

__all__ = ["FmsSample", "FmsAttack", "is_weak_iv", "weak_iv_for"]


@dataclass(frozen=True)
class FmsSample:
    """One captured (IV, first-keystream-byte) observation."""

    iv: bytes
    first_keystream_byte: int

    def __post_init__(self) -> None:
        if len(self.iv) != 3:
            raise ValueError("IV must be 3 bytes")
        if not 0 <= self.first_keystream_byte <= 255:
            raise ValueError("keystream byte out of range")


def is_weak_iv(iv: bytes, key_byte_index: Optional[int] = None) -> bool:
    """True if ``iv`` has the classic FMS weak form ``(A+3, 255, X)``.

    With ``key_byte_index`` given, checks weakness for that specific
    root-key byte ``A``; otherwise for any ``A`` in a 13-byte key.
    """
    if len(iv) != 3 or iv[1] != 255:
        return False
    a = iv[0] - 3
    if key_byte_index is not None:
        return a == key_byte_index
    return 0 <= a < 13


def weak_iv_for(key_byte_index: int, x: int = 0) -> bytes:
    """Construct the weak IV ``(A+3, 255, x)`` targeting root byte ``A``."""
    if not 0 <= key_byte_index < 13:
        raise ValueError("key byte index out of range for WEP")
    return bytes((key_byte_index + 3, 255, x & 0xFF))


class FmsAttack:
    """Accumulates weak-IV samples and recovers the WEP root key.

    Parameters
    ----------
    key_length:
        Root key length in bytes (5 for 40-bit WEP, 13 for 104-bit).

    Usage
    -----
    Feed every sniffed ``(iv, first keystream byte)`` pair to
    :meth:`add_sample` (non-weak IVs are cheaply discarded), then call
    :meth:`recover`.  If a known-plaintext verifier is supplied,
    :meth:`recover` performs a small ranked search over near-miss vote
    winners, which substantially lowers the packets-needed threshold —
    the same trick Airsnort's "breadth" parameter implemented.
    """

    def __init__(self, key_length: int = 5) -> None:
        if key_length not in (5, 13):
            raise ValueError("WEP key length must be 5 or 13 bytes")
        self.key_length = key_length
        # Samples bucketed by the root-key byte index their IV targets.
        self._buckets: dict[int, list[FmsSample]] = {a: [] for a in range(key_length)}
        self.samples_seen = 0
        self.weak_samples = 0

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def add_sample(self, iv: bytes, first_keystream_byte: int) -> bool:
        """Record one observation; returns True if it was a usable weak IV."""
        self.samples_seen += 1
        if len(iv) != 3 or iv[1] != 255:
            return False
        a = iv[0] - 3
        if not 0 <= a < self.key_length:
            return False
        self._buckets[a].append(FmsSample(iv, first_keystream_byte & 0xFF))
        self.weak_samples += 1
        return True

    def extend(self, samples: Iterable[tuple[bytes, int]]) -> None:
        for iv, out in samples:
            self.add_sample(iv, out)

    def bucket_sizes(self) -> list[int]:
        """Weak samples collected per root-key byte (coverage diagnostic)."""
        return [len(self._buckets[a]) for a in range(self.key_length)]

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def votes_for_byte(self, a: int, known_prefix: bytes,
                       use_numpy: Optional[bool] = None) -> list[int]:
        """Vote table (256 counters) for root-key byte ``a``.

        ``known_prefix`` is the already-recovered root key bytes
        ``key[0:a]``; recovery is inherently sequential because the
        partial KSA for byte ``a`` consumes all earlier bytes.

        For large sample buckets the computation dispatches to the
        numpy-vectorized kernel (:mod:`repro.crypto.fms_fast`), which
        is measurably faster past ~50 samples; ``use_numpy`` forces the
        choice for testing.  Both paths produce identical tables
        (property-tested).
        """
        if len(known_prefix) != a:
            raise ValueError("known_prefix must contain exactly the first a bytes")
        prof = active_profiler()
        if prof is None:
            return self._votes_for_byte(a, known_prefix, use_numpy)
        with prof.span("crypto.fms"):
            return self._votes_for_byte(a, known_prefix, use_numpy)

    def _votes_for_byte(self, a: int, known_prefix: bytes,
                        use_numpy: Optional[bool]) -> list[int]:
        bucket = self._buckets[a]
        if use_numpy is None:
            from repro.crypto.fms_fast import MIN_SAMPLES_FOR_NUMPY
            use_numpy = len(bucket) >= MIN_SAMPLES_FOR_NUMPY
        if use_numpy:
            from repro.crypto.fms_fast import votes_for_byte_vectorized
            return votes_for_byte_vectorized(bucket, a, known_prefix)
        votes = [0] * 256
        rounds = a + 3
        for sample in self._buckets[a]:
            key = sample.iv + known_prefix  # per-packet key prefix, length a+3
            # Partial KSA over the known prefix.
            s = list(range(256))
            j = 0
            for i in range(rounds):
                j = (j + s[i] + key[i]) & 0xFF
                s[i], s[j] = s[j], s[i]
            s1 = s[1]
            # Resolved condition: the leaked byte survives the rest of KSA
            # with probability ~ e^-3 ≈ 5%.
            if s1 < rounds and (s1 + s[s1]) % 256 == rounds:
                guess = (sample.first_keystream_byte - j - s[rounds]) & 0xFF
                votes[guess] += 1
        return votes

    def recover(
        self,
        verifier=None,
        search_width: int = 3,
        max_nodes: int = 20000,
    ) -> Optional[bytes]:
        """Attempt full key recovery.

        ``verifier`` is an optional ``bytes -> bool`` callable (e.g. "does
        this key decrypt a captured frame with a valid ICV?").  Without
        one, the straight per-byte vote winner is returned.  With one, a
        depth-first search over the top ``search_width`` candidates per
        byte is performed and only a verified key is returned; the
        search visits at most ``max_nodes`` prefixes (the bounded
        compute a real attacker — and Airsnort — budgets) before giving
        up for this sample set.
        """
        if verifier is None:
            key = bytearray()
            for a in range(self.key_length):
                votes = self.votes_for_byte(a, bytes(key))
                if not any(votes):
                    return None
                key.append(max(range(256), key=votes.__getitem__))
            return bytes(key)
        budget = [max_nodes]
        return self._search(b"", verifier, search_width, budget)

    def _search(self, prefix: bytes, verifier, width: int,
                budget: list[int]) -> Optional[bytes]:
        if budget[0] <= 0:
            return None
        budget[0] -= 1
        a = len(prefix)
        if a == self.key_length:
            return prefix if verifier(prefix) else None
        votes = self.votes_for_byte(a, prefix)
        ranked = sorted(range(256), key=lambda b: (-votes[b], b))
        candidates = [b for b in ranked[:width] if votes[b] > 0] or ranked[:1]
        for candidate in candidates:
            found = self._search(prefix + bytes([candidate]), verifier, width, budget)
            if found is not None:
                return found
            if budget[0] <= 0:
                return None
        return None
