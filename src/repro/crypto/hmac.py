"""HMAC (RFC 2104) over the local MD5 and SHA-1 implementations.

The VPN transport authenticates every record with HMAC-SHA1; a rogue
AP that flips bits in the ciphertext (trivially possible against a
bare stream cipher) is caught here — the mechanism behind the paper's
claim that a VPN protects even over a fully hostile wireless segment.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.crypto.md5 import MD5
from repro.crypto.sha1 import SHA1

__all__ = ["hmac", "hmac_md5", "hmac_sha1", "constant_time_equal"]


class _Hash(Protocol):  # structural type of MD5 / SHA1
    digest_size: int
    block_size: int

    def update(self, data: bytes) -> None: ...
    def digest(self) -> bytes: ...


def hmac(key: bytes, message: bytes, hash_factory: Callable[[], _Hash]) -> bytes:
    """HMAC per RFC 2104: H(K ^ opad || H(K ^ ipad || message))."""
    probe = hash_factory()
    block_size = probe.block_size
    if len(key) > block_size:
        h = hash_factory()
        h.update(key)
        key = h.digest()
    key = key.ljust(block_size, b"\x00")
    ipad = bytes(b ^ 0x36 for b in key)
    opad = bytes(b ^ 0x5C for b in key)
    inner = hash_factory()
    inner.update(ipad + message)
    outer = hash_factory()
    outer.update(opad + inner.digest())
    return outer.digest()


def hmac_sha1(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA1, the VPN record MAC."""
    return hmac(key, message, SHA1)


def hmac_md5(key: bytes, message: bytes) -> bytes:
    """HMAC-MD5, used by the 802.1X-style EAP exchange."""
    return hmac(key, message, MD5)


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare MACs without early exit (mirrors real verifier behaviour)."""
    if len(a) != len(b):
        return False
    acc = 0
    for x, y in zip(a, b):
        acc |= x ^ y
    return acc == 0
