"""CRC-32 (IEEE 802.3 polynomial), implemented from scratch.

CRC-32 appears twice in the reproduction: as the WEP integrity check
value (ICV) — which, being linear, provides no cryptographic integrity,
one of WEP's "legendary" weaknesses — and as the 802.11 frame check
sequence (FCS).

A 256-entry lookup table is built once at import; per the HPC guides,
the byte loop is the measured hot path and the table keeps it O(n)
with small constants without reaching for C.
"""

from __future__ import annotations

__all__ = ["crc32", "crc32_table", "crc32_combine_xor"]

_POLY = 0xEDB88320  # reflected 0x04C11DB7


def _build_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32_table() -> list[int]:
    """The 256-entry CRC table (exposed for tests and the linearity demo)."""
    return list(_TABLE)


def crc32(data: bytes, crc: int = 0) -> int:
    """CRC-32 of ``data``; ``crc`` allows incremental computation.

    Matches ``zlib.crc32`` (verified by the test suite) but is
    implemented locally because the reproduction builds every substrate
    from scratch.
    """
    crc ^= 0xFFFFFFFF
    for b in data:
        crc = _TABLE[(crc ^ b) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def crc32_combine_xor(crc_a: int, crc_b: int, crc_zero: int) -> int:
    """CRC linearity helper: crc(a ^ b) == crc(a) ^ crc(b) ^ crc(0...).

    Demonstrates *why* the WEP ICV fails as an integrity check: an
    attacker can flip plaintext bits through the ciphertext and fix the
    ICV without knowing the key.  Used by the WEP bit-flipping test.
    """
    return crc_a ^ crc_b ^ crc_zero
