"""MD5 message digest (RFC 1321), implemented from scratch.

The §4.1 experiment rewrites a download page's published ``MD5SUM`` so
the victim's integrity check passes on the trojaned binary.  For that
demonstration to be honest, the digests must be real: the browser model
computes MD5 over the actual downloaded bytes with this implementation.
"""

from __future__ import annotations

import struct

__all__ = ["md5", "md5_hexdigest", "MD5"]

# Per-round left-rotate amounts.
_S = (
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
)

# K[i] = floor(2^32 * abs(sin(i + 1))) — stored as literals for speed
# and to avoid a float dependency in a correctness-critical constant.
_K = (
    0xD76AA478, 0xE8C7B756, 0x242070DB, 0xC1BDCEEE,
    0xF57C0FAF, 0x4787C62A, 0xA8304613, 0xFD469501,
    0x698098D8, 0x8B44F7AF, 0xFFFF5BB1, 0x895CD7BE,
    0x6B901122, 0xFD987193, 0xA679438E, 0x49B40821,
    0xF61E2562, 0xC040B340, 0x265E5A51, 0xE9B6C7AA,
    0xD62F105D, 0x02441453, 0xD8A1E681, 0xE7D3FBC8,
    0x21E1CDE6, 0xC33707D6, 0xF4D50D87, 0x455A14ED,
    0xA9E3E905, 0xFCEFA3F8, 0x676F02D9, 0x8D2A4C8A,
    0xFFFA3942, 0x8771F681, 0x6D9D6122, 0xFDE5380C,
    0xA4BEEA44, 0x4BDECFA9, 0xF6BB4B60, 0xBEBFBC70,
    0x289B7EC6, 0xEAA127FA, 0xD4EF3085, 0x04881D05,
    0xD9D4D039, 0xE6DB99E5, 0x1FA27CF8, 0xC4AC5665,
    0xF4292244, 0x432AFF97, 0xAB9423A7, 0xFC93A039,
    0x655B59C3, 0x8F0CCC92, 0xFFEFF47D, 0x85845DD1,
    0x6FA87E4F, 0xFE2CE6E0, 0xA3014314, 0x4E0811A1,
    0xF7537E82, 0xBD3AF235, 0x2AD7D2BB, 0xEB86D391,
)

_MASK = 0xFFFFFFFF


def _rotl(x: int, n: int) -> int:
    return ((x << n) | (x >> (32 - n))) & _MASK


class MD5:
    """Incremental MD5 with the hashlib-style update/digest interface."""

    digest_size = 16
    block_size = 64

    def __init__(self, data: bytes = b"") -> None:
        self._h = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476]
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        self._length += len(data)
        buf = self._buffer + data
        offset = 0
        for offset in range(0, len(buf) - 63, 64):
            self._compress(buf[offset:offset + 64])
        self._buffer = buf[len(buf) - (len(buf) % 64):]

    def _compress(self, block: bytes) -> None:
        m = struct.unpack("<16I", block)
        a, b, c, d = self._h
        for i in range(64):
            if i < 16:
                f = (b & c) | (~b & d)
                g = i
            elif i < 32:
                f = (d & b) | (~d & c)
                g = (5 * i + 1) % 16
            elif i < 48:
                f = b ^ c ^ d
                g = (3 * i + 5) % 16
            else:
                f = c ^ (b | (~d & _MASK))
                g = (7 * i) % 16
            f = (f + a + _K[i] + m[g]) & _MASK
            a, d, c = d, c, b
            b = (b + _rotl(f, _S[i])) & _MASK
        self._h = [
            (self._h[0] + a) & _MASK,
            (self._h[1] + b) & _MASK,
            (self._h[2] + c) & _MASK,
            (self._h[3] + d) & _MASK,
        ]

    def digest(self) -> bytes:
        # Pad a copy so digest() can be called repeatedly / mid-stream.
        clone = self.copy()
        bit_len = (clone._length * 8) & 0xFFFFFFFFFFFFFFFF
        pad_len = (55 - clone._length) % 64
        clone.update(b"\x80" + b"\x00" * pad_len + struct.pack("<Q", bit_len))
        assert not clone._buffer  # padded stream is block-aligned
        return struct.pack("<4I", *clone._h)

    def hexdigest(self) -> str:
        return self.digest().hex()

    def copy(self) -> "MD5":
        clone = MD5()
        clone._h = list(self._h)
        clone._buffer = self._buffer
        clone._length = self._length
        return clone


def md5(data: bytes) -> bytes:
    """One-shot MD5 digest of ``data``."""
    return MD5(data).digest()


def md5_hexdigest(data: bytes) -> str:
    """One-shot MD5 hex digest — the format published on download pages."""
    return MD5(data).hexdigest()
