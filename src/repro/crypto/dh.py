"""Finite-field Diffie–Hellman key agreement.

The SSH-like VPN transport (§5.3's PPP-over-SSH prototype) needs a key
exchange.  We use the 1536-bit MODP group from RFC 3526 with classic
DH, plus SHA-1-based key derivation with per-purpose labels (the same
scheme SSH-1/SSH-2 use in spirit).

Authentication matters more than the math: the paper's §5.2 insists
that VPN credentials be *pre-established out of band*, precisely
because an unauthenticated DH is itself MITM-able.  The VPN layer
therefore authenticates the exchange with a pre-shared secret from
:class:`repro.crypto.keystore.KeyStore`; this module provides only the
group arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hmac import hmac_sha1
from repro.crypto.sha1 import sha1

__all__ = ["DhGroup", "DiffieHellman", "DH_GROUP_1536", "derive_key"]


@dataclass(frozen=True)
class DhGroup:
    """A prime-order multiplicative group (p prime, g generator)."""

    p: int
    g: int
    name: str = "custom"

    def validate_public(self, y: int) -> bool:
        """Reject degenerate public values (0, 1, p-1 — small subgroups)."""
        return 1 < y < self.p - 1


# RFC 3526 group 5 (1536-bit MODP).
_P_1536 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF",
    16,
)

DH_GROUP_1536 = DhGroup(p=_P_1536, g=2, name="modp1536")

# A deliberately small group for fast unit tests (documented unsafe).
DH_GROUP_TOY = DhGroup(p=0xFFFFFFFB, g=7, name="toy32")


class DiffieHellman:
    """One party's ephemeral DH state.

    Examples
    --------
    >>> from repro.sim.rng import SimRandom
    >>> a = DiffieHellman(DH_GROUP_TOY, SimRandom(1))
    >>> b = DiffieHellman(DH_GROUP_TOY, SimRandom(2))
    >>> a.shared_secret(b.public) == b.shared_secret(a.public)
    True
    """

    def __init__(self, group: DhGroup, rng) -> None:
        self.group = group
        bits = group.p.bit_length()
        # Private exponent: uniform in [2, p-2].
        self._x = 2 + int.from_bytes(rng.bytes((bits + 7) // 8), "big") % (group.p - 4)
        self.public = pow(group.g, self._x, group.p)

    def shared_secret(self, peer_public: int) -> bytes:
        """Compute g^(xy) and return it as big-endian bytes."""
        if not self.group.validate_public(peer_public):
            raise ValueError("degenerate DH public value")
        z = pow(peer_public, self._x, self.group.p)
        nbytes = (self.group.p.bit_length() + 7) // 8
        return z.to_bytes(nbytes, "big")


def derive_key(shared: bytes, label: str, length: int, session_id: bytes = b"") -> bytes:
    """Expand a DH shared secret into a purpose-labelled key.

    Counter-mode expansion over SHA-1:
    ``K = SHA1(shared || label || session_id || 0) || SHA1(... || 1) || ...``
    """
    out = b""
    counter = 0
    while len(out) < length:
        out += sha1(shared + label.encode("utf-8") + session_id + bytes([counter]))
        counter += 1
    return out[:length]


def authenticate_exchange(psk: bytes, transcript: bytes) -> bytes:
    """MAC over the handshake transcript with the pre-shared secret.

    Binding the DH exchange to an out-of-band secret is what prevents a
    rogue AP from simply MITM-ing the key exchange itself (§5.2
    requirement 2).
    """
    return hmac_sha1(psk, transcript)
