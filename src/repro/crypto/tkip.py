"""TKIP-style per-packet keying and the Michael MIC.

Paper §2.2: "802.1x and TKIP ... have been packaged into ... WPA.
TKIP still relies on a pre shared key, thus is still vulnerable to
MITM attack from valid network clients."  To reproduce that claim we
need a WPA-PSK mode whose *security-relevant* properties hold: per-
packet keys derived from a shared secret plus a sequence counter
(so FMS-style IV attacks fail), a real forgery-detecting MIC
(Michael, implemented faithfully below), and — crucially — a key that
every authorized client shares, so a rogue AP run by a valid client
decrypts and re-encrypts traffic perfectly.

Substitution note (recorded in DESIGN.md): real TKIP's two-phase key
mixing uses a large S-box; we substitute
``SHA1(TK || TA || TSC)[:16]`` as the per-packet RC4 key.  The
substitution preserves what the paper's argument depends on — distinct
per-packet keys, no weak-IV structure, shared-secret derivation — and
none of the experiments depend on S-box internals.  The Michael MIC,
whose weakness budget *is* protocol-relevant, is implemented exactly
per IEEE 802.11i.
"""

from __future__ import annotations

import struct

from repro.crypto.rc4 import RC4
from repro.crypto.sha1 import sha1
from repro.sim.errors import IntegrityError

__all__ = ["MichaelMic", "TkipSession", "TkipError"]

_MASK = 0xFFFFFFFF


class TkipError(IntegrityError):
    """TKIP decapsulation failed (MIC failure or replay)."""


def _rotl(x: int, n: int) -> int:
    return ((x << n) | (x >> (32 - n))) & _MASK


def _rotr(x: int, n: int) -> int:
    return ((x >> n) | (x << (32 - n))) & _MASK


def _xswap(x: int) -> int:
    """Swap the bytes within each 16-bit half (Michael's XSWAP)."""
    return (((x & 0xFF00FF00) >> 8) | ((x & 0x00FF00FF) << 8)) & _MASK


class MichaelMic:
    """The Michael message integrity code, exactly per IEEE 802.11i.

    Michael is deliberately weak (≈ 20-bit security) because it had to
    run on WEP-era hardware; TKIP compensates with countermeasures.
    Weak or not, it stops the *blind* bit-flipping that defeats WEP's
    CRC-32 ICV.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) != 8:
            raise ValueError("Michael key is 8 bytes")
        self.k0, self.k1 = struct.unpack("<2I", key)

    @staticmethod
    def _block(l: int, r: int) -> tuple[int, int]:
        r ^= _rotl(l, 17)
        l = (l + r) & _MASK
        r ^= _xswap(l)
        l = (l + r) & _MASK
        r ^= _rotl(l, 3)
        l = (l + r) & _MASK
        r ^= _rotr(l, 2)
        l = (l + r) & _MASK
        return l, r

    def compute(self, message: bytes) -> bytes:
        """8-byte MIC over ``message`` (already including the MIC header)."""
        # Pad: 0x5a then 4..7 zero bytes, to a multiple of 4 (IEEE 802.11i).
        zeros = (4 - (len(message) + 1) % 4) % 4 + 4
        data = message + b"\x5a" + b"\x00" * zeros
        if len(data) % 4:  # pragma: no cover - padding invariant
            raise AssertionError("Michael padding failed")
        l, r = self.k0, self.k1
        for off in range(0, len(data), 4):
            (word,) = struct.unpack_from("<I", data, off)
            l ^= word
            l, r = self._block(l, r)
        return struct.pack("<2I", l, r)


class TkipSession:
    """Per-link TKIP state: per-packet keys, Michael MIC, replay window.

    Parameters
    ----------
    temporal_key:
        16-byte temporal key (derived from the PSK in
        :mod:`repro.defense.wpa`).
    mic_key:
        8-byte Michael key.
    transmitter:
        Transmitter address bytes mixed into the per-packet key.
    """

    def __init__(self, temporal_key: bytes, mic_key: bytes, transmitter: bytes) -> None:
        if len(temporal_key) != 16:
            raise ValueError("TKIP temporal key is 16 bytes")
        self.temporal_key = temporal_key
        self.michael = MichaelMic(mic_key)
        self.transmitter = bytes(transmitter)
        self.tsc = 0           # transmit sequence counter
        self.replay_floor = -1  # highest TSC accepted so far

    def _packet_key(self, tsc: int) -> bytes:
        material = self.temporal_key + self.transmitter + struct.pack("<Q", tsc)
        return sha1(material)[:16]

    def encapsulate(self, plaintext: bytes) -> bytes:
        """Protect ``plaintext``: returns ``TSC(6) | RC4(plaintext | MIC)``."""
        self.tsc += 1
        tsc_bytes = struct.pack("<Q", self.tsc)[:6]
        mic = self.michael.compute(plaintext)
        body = RC4(self._packet_key(self.tsc)).crypt(plaintext + mic)
        return tsc_bytes + body

    def decapsulate(self, body: bytes) -> bytes:
        """Verify and strip TKIP protection; raises :class:`TkipError`."""
        if len(body) < 6 + 8:
            raise TkipError("TKIP body too short")
        tsc = int.from_bytes(body[:6] + b"\x00\x00", "little")
        if tsc <= self.replay_floor:
            raise TkipError(f"TKIP replay: TSC {tsc} <= {self.replay_floor}")
        decrypted = RC4(self._packet_key(tsc)).crypt(body[6:])
        plaintext, mic = decrypted[:-8], decrypted[-8:]
        if self.michael.compute(plaintext) != mic:
            raise TkipError("Michael MIC failure")
        self.replay_floor = tsc
        return plaintext
