"""SHA-1 (FIPS 180-1), implemented from scratch.

Used as the hash inside HMAC-SHA1, the integrity MAC of the SSH-like
VPN transport (:mod:`repro.defense.vpn`) — the piece that makes the
paper's countermeasure actually detect in-flight tampering by a rogue
access point.
"""

from __future__ import annotations

import struct

__all__ = ["sha1", "sha1_hexdigest", "SHA1"]

_MASK = 0xFFFFFFFF


def _rotl(x: int, n: int) -> int:
    return ((x << n) | (x >> (32 - n))) & _MASK


class SHA1:
    """Incremental SHA-1 with the hashlib-style update/digest interface."""

    digest_size = 20
    block_size = 64

    def __init__(self, data: bytes = b"") -> None:
        self._h = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0]
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        self._length += len(data)
        buf = self._buffer + data
        for offset in range(0, len(buf) - 63, 64):
            self._compress(buf[offset:offset + 64])
        self._buffer = buf[len(buf) - (len(buf) % 64):]

    def _compress(self, block: bytes) -> None:
        w = list(struct.unpack(">16I", block))
        for t in range(16, 80):
            w.append(_rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))
        a, b, c, d, e = self._h
        for t in range(80):
            if t < 20:
                f = (b & c) | (~b & d)
                k = 0x5A827999
            elif t < 40:
                f = b ^ c ^ d
                k = 0x6ED9EBA1
            elif t < 60:
                f = (b & c) | (b & d) | (c & d)
                k = 0x8F1BBCDC
            else:
                f = b ^ c ^ d
                k = 0xCA62C1D6
            temp = (_rotl(a, 5) + f + e + k + w[t]) & _MASK
            e, d, c, b, a = d, c, _rotl(b, 30), a, temp
        self._h = [(x + y) & _MASK for x, y in zip(self._h, (a, b, c, d, e))]

    def digest(self) -> bytes:
        clone = self.copy()
        bit_len = (clone._length * 8) & 0xFFFFFFFFFFFFFFFF
        pad_len = (55 - clone._length) % 64
        clone.update(b"\x80" + b"\x00" * pad_len + struct.pack(">Q", bit_len))
        assert not clone._buffer
        return struct.pack(">5I", *clone._h)

    def hexdigest(self) -> str:
        return self.digest().hex()

    def copy(self) -> "SHA1":
        clone = SHA1()
        clone._h = list(self._h)
        clone._buffer = self._buffer
        clone._length = self._length
        return clone


def sha1(data: bytes) -> bytes:
    """One-shot SHA-1 digest."""
    return SHA1(data).digest()


def sha1_hexdigest(data: bytes) -> str:
    """One-shot SHA-1 hex digest."""
    return SHA1(data).hexdigest()
