"""Out-of-band credential store.

Paper §5.2: "arrangements for the VPN (secret exchange or certificate
issuance) must take place out of band or on a secure network and not in
a situation where the initial transaction would be vulnerable."

:class:`KeyStore` models exactly that: a per-host table of
pre-established secrets and trusted-peer fingerprints, populated by
scenario setup code *before* the client ever touches a wireless
segment.  The VPN refuses endpoints it has no pre-established secret
for, and the E-CNN / FIG3 experiments show that a rogue cannot coax a
properly configured client into tunnelling to *it* instead.

The store also models the paper's SSL-certificate skepticism (§5.2.1):
a :class:`Credential` carries a ``provenance`` field, and policy code
can refuse credentials whose provenance is merely ``"purchased-cert"``
("a guarantee of nothing more than that provider having given the
certificate authority several hundred dollars").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.sha1 import sha1
from repro.sim.errors import ConfigurationError

__all__ = ["Credential", "KeyStore"]

TRUSTED_PROVENANCES = ("out-of-band", "secure-network")


@dataclass(frozen=True)
class Credential:
    """A pre-established secret shared with a named peer.

    Attributes
    ----------
    peer:
        Name of the remote endpoint (e.g. ``"vpn.corp.example"``).
    secret:
        The shared secret bytes.
    provenance:
        How the secret was established: ``"out-of-band"`` and
        ``"secure-network"`` satisfy §5.2; ``"purchased-cert"`` and
        ``"in-band"`` do not.
    """

    peer: str
    secret: bytes
    provenance: str = "out-of-band"

    @property
    def trustworthy(self) -> bool:
        return self.provenance in TRUSTED_PROVENANCES

    def fingerprint(self) -> str:
        """Short identifier safe to log (never the secret itself)."""
        return sha1(self.secret)[:6].hex()


class KeyStore:
    """Per-host table of pre-established credentials."""

    def __init__(self) -> None:
        self._creds: dict[str, Credential] = {}

    def enroll(self, peer: str, secret: bytes, provenance: str = "out-of-band") -> Credential:
        """Record a credential for ``peer`` (scenario-setup time only)."""
        if not secret:
            raise ConfigurationError("credential secret must be non-empty")
        cred = Credential(peer=peer, secret=bytes(secret), provenance=provenance)
        self._creds[peer] = cred
        return cred

    def lookup(self, peer: str) -> Optional[Credential]:
        return self._creds.get(peer)

    def require(self, peer: str, trusted_only: bool = True) -> Credential:
        """Fetch a credential or raise; optionally reject weak provenance."""
        cred = self._creds.get(peer)
        if cred is None:
            raise ConfigurationError(
                f"no pre-established credential for {peer!r} "
                "(paper §5.2: VPN arrangements must occur out of band)"
            )
        if trusted_only and not cred.trustworthy:
            raise ConfigurationError(
                f"credential for {peer!r} has untrusted provenance "
                f"{cred.provenance!r} (paper §5.2.1)"
            )
        return cred

    def peers(self) -> list[str]:
        return sorted(self._creds)

    def __contains__(self, peer: str) -> bool:
        return peer in self._creds

    def __len__(self) -> int:
        return len(self._creds)
