"""The victim's browser and update habits.

This models the human side of the §4.1 experiment: fetch the download
page, click the link, check the published MD5SUM against the fetched
bytes, and — if they match — install and run the binary.  Against the
netsed MITM the check *passes* and the victim runs a trojan.

It also models §5.1's "CNN user": pages from trusted sites execute
their inline script; a client "a little behind on browser or client
updates" (``patched=False``) is compromised by an injected exploit.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.crypto.md5 import md5_hexdigest
from repro.hosts.host import Host
from repro.httpsim.client import HttpClient, parse_url
from repro.httpsim.downloads import is_trojaned
from repro.httpsim.messages import HttpResponse

__all__ = ["Browser", "DownloadOutcome", "PageVisit"]

_HREF_RE = re.compile(rb"href=([^\s>\"']+)")
_MD5_RE = re.compile(rb"MD5SUM:\s*([0-9a-fA-F]{32})")
_SCRIPT_RE = re.compile(rb"<script>(.*?)</script>", re.DOTALL)
EXPLOIT_MARKER = b"exploit("


@dataclass
class DownloadOutcome:
    """The result of one download-and-verify-and-run sequence."""

    page_url: str
    link: Optional[str] = None
    published_md5: Optional[str] = None
    computed_md5: Optional[str] = None
    md5_ok: Optional[bool] = None
    executed: bool = False
    trojaned: bool = False
    failed: bool = False

    @property
    def compromised(self) -> bool:
        """Did the victim end up running attacker code?"""
        return self.executed and self.trojaned


@dataclass
class PageVisit:
    """The result of one ordinary page view (the §5.1 scenario)."""

    url: str
    status: Optional[int] = None
    script: bytes = b""
    exploit_executed: bool = False


class Browser:
    """A scriptable victim browser.

    Parameters
    ----------
    patched:
        Whether the browser has current security updates.  Unpatched
        browsers are compromised by injected ``exploit(...)`` script
        (§5.1: "This user may be a little behind on browser or client
        updates").
    """

    def __init__(self, host: Host, *, resolver=None, patched: bool = False) -> None:
        self.host = host
        self.client = HttpClient(host, resolver=resolver)
        self.patched = patched
        self.downloads: list[DownloadOutcome] = []
        self.visits: list[PageVisit] = []
        self.compromised = False

    # ------------------------------------------------------------------
    # the §4.1 flow: download page → binary → md5sum → run
    # ------------------------------------------------------------------
    def download_and_run(self, page_url: str,
                         on_done: Optional[Callable[[DownloadOutcome], None]] = None) -> DownloadOutcome:
        """Fetch a download page, follow its link, verify MD5, run the file.

        Returns the (initially empty) :class:`DownloadOutcome`, which
        fills in as the simulated fetches complete; ``on_done`` fires
        when the sequence ends (success or failure).
        """
        outcome = DownloadOutcome(page_url=page_url)
        self.downloads.append(outcome)

        def finish() -> None:
            if outcome.compromised:
                self.compromised = True
                self.host.sim.trace.emit("browser.compromised", self.host.name,
                                         via="trojan-download", url=page_url)
            if on_done is not None:
                on_done(outcome)

        def on_page(response: Optional[HttpResponse]) -> None:
            if response is None or response.status != 200:
                outcome.failed = True
                finish()
                return
            link = self._extract_link(response.body)
            digest = self._extract_md5(response.body)
            if link is None:
                outcome.failed = True
                finish()
                return
            outcome.link = link
            outcome.published_md5 = digest
            self.client.get(self._absolutize(page_url, link), on_binary)

        def on_binary(response: Optional[HttpResponse]) -> None:
            if response is None or response.status != 200:
                outcome.failed = True
                finish()
                return
            blob = response.body
            outcome.computed_md5 = md5_hexdigest(blob)
            if outcome.published_md5 is not None:
                outcome.md5_ok = outcome.computed_md5 == outcome.published_md5.lower()
                if not outcome.md5_ok:
                    # The integrity check did its job; the victim refuses to run it.
                    self.host.sim.trace.emit("browser.md5_mismatch", self.host.name,
                                             url=page_url)
                    finish()
                    return
            outcome.executed = True
            outcome.trojaned = is_trojaned(blob)
            finish()

        self.client.get(page_url, on_page)
        return outcome

    # ------------------------------------------------------------------
    # the §5.1 flow: browse a trusted site, execute its script
    # ------------------------------------------------------------------
    def visit(self, url: str,
              on_done: Optional[Callable[[PageVisit], None]] = None) -> PageVisit:
        """View a page and run its inline script, as browsers do."""
        visit = PageVisit(url=url)
        self.visits.append(visit)

        def on_page(response: Optional[HttpResponse]) -> None:
            if response is not None:
                visit.status = response.status
                match = _SCRIPT_RE.search(response.body)
                if match:
                    visit.script = match.group(1)
                    if EXPLOIT_MARKER in visit.script and not self.patched:
                        visit.exploit_executed = True
                        self.compromised = True
                        self.host.sim.trace.emit("browser.compromised", self.host.name,
                                                 via="script-exploit", url=url)
            if on_done is not None:
                on_done(visit)

        self.client.get(url, on_page)
        return visit

    # ------------------------------------------------------------------
    # HTML scraping (regex is period-appropriate browser engineering)
    # ------------------------------------------------------------------
    @staticmethod
    def _extract_link(body: bytes) -> Optional[str]:
        match = _HREF_RE.search(body)
        if match is None:
            return None
        return match.group(1).decode("ascii", "replace")

    @staticmethod
    def _extract_md5(body: bytes) -> Optional[str]:
        match = _MD5_RE.search(body)
        return match.group(1).decode("ascii") if match else None

    @staticmethod
    def _absolutize(page_url: str, link: str) -> str:
        """Resolve a (possibly URL-encoded absolute) link against its page.

        netsed's replacement injects ``http:%2f%2fevil...`` — %2f being
        '/', "properly interpreted" per §4.1.
        """
        link = link.replace("%2f", "/").replace("%2F", "/")
        if link.startswith("http://"):
            return link
        parsed = parse_url(page_url)
        base = page_url.rsplit("/", 1)[0]
        if link.startswith("/"):
            return f"http://{parsed.host}:{parsed.port}{link}"
        return f"{base}/{link}"
