"""HTTP client over simulated TCP, with minimal URL handling."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.hosts.host import Host
from repro.hosts.services import DnsResolver
from repro.httpsim.messages import HttpRequest, HttpResponse, HttpStreamParser
from repro.netstack.addressing import IPv4Address
from repro.sim.errors import ProtocolError

__all__ = ["HttpClient", "parse_url"]


@dataclass(frozen=True)
class ParsedUrl:
    host: str          # hostname or dotted IP
    port: int
    path: str

    @property
    def is_ip(self) -> bool:
        try:
            IPv4Address(self.host)
            return True
        except (ValueError, TypeError):
            return False


def parse_url(url: str) -> ParsedUrl:
    """Parse ``http://host[:port]/path`` (the only scheme in 2003's problem)."""
    if not url.startswith("http://"):
        raise ProtocolError(f"unsupported URL scheme in {url!r}")
    rest = url[len("http://"):]
    hostport, slash, path = rest.partition("/")
    host, _, port_text = hostport.partition(":")
    if not host:
        raise ProtocolError(f"empty host in {url!r}")
    return ParsedUrl(host=host, port=int(port_text) if port_text else 80,
                     path="/" + path if slash else "/")


class HttpClient:
    """Callback-style GET over the simulated stack.

    Hostnames resolve through the client's :class:`DnsResolver` (if
    configured) — meaning the client trusts whatever DNS server its
    network attachment gave it, hostile hotspots included.
    """

    TIMEOUT_S = 30.0

    def __init__(self, host: Host, resolver: Optional[DnsResolver] = None) -> None:
        self.host = host
        self.resolver = resolver
        self.fetches = 0
        self.errors = 0

    def get(self, url: str,
            on_response: Callable[[Optional[HttpResponse]], None],
            headers: Optional[dict[str, str]] = None) -> None:
        """Fetch a URL; ``on_response`` receives the response or None."""
        parsed = parse_url(url)
        if parsed.is_ip:
            self._fetch(IPv4Address(parsed.host), parsed, on_response, headers)
            return
        if self.resolver is None:
            self.host.sim.call_soon(on_response, None)
            return

        def resolved(ip: Optional[IPv4Address]) -> None:
            if ip is None:
                self.errors += 1
                on_response(None)
            else:
                self._fetch(ip, parsed, on_response, headers)

        self.resolver.resolve(parsed.host, resolved)

    def _fetch(self, ip: IPv4Address, parsed: ParsedUrl,
               on_response: Callable[[Optional[HttpResponse]], None],
               headers: Optional[dict[str, str]]) -> None:
        self.fetches += 1
        try:
            conn = self.host.tcp_connect(ip, parsed.port)
        except Exception:
            self.errors += 1
            self.host.sim.call_soon(on_response, None)
            return
        parser = HttpStreamParser("response")
        done = {"fired": False}

        def finish(response: Optional[HttpResponse]) -> None:
            if done["fired"]:
                return
            done["fired"] = True
            if response is None:
                self.errors += 1
            on_response(response)

        def on_established() -> None:
            request = HttpRequest(
                method="GET", path=parsed.path,
                headers={"Host": parsed.host, **(headers or {})},
            )
            conn.send(request.to_bytes())

        def on_data(data: bytes) -> None:
            if parser.complete:
                return
            try:
                parser.feed(data)
            except ProtocolError:
                conn.abort()
                finish(None)
                return
            if parser.complete:
                finish(parser.message)  # type: ignore[arg-type]
                conn.close()

        def on_close() -> None:
            if not parser.complete:
                parser.finish_on_close()
            finish(parser.message if parser.complete else None)  # type: ignore[arg-type]

        conn.on_established = on_established
        conn.on_data = on_data
        conn.on_close = on_close
        conn.on_reset = lambda: finish(None)
        self.host.sim.schedule(self.TIMEOUT_S, lambda: finish(None))
