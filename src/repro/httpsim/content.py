"""Website content, including the paper's download page.

§4.1: "We set up a sample target download web page which contained a
downloadable binary, a link to that downloadable binary and an MD5SUM
of that binary.  This download scenario is relatively common, where
the MD5SUM is intended to verify that package was downloaded
properly."
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.crypto.md5 import md5_hexdigest
from repro.httpsim.messages import HttpRequest, HttpResponse

__all__ = ["Website", "make_download_page", "make_news_page"]


class Website:
    """A path → content mapping with optional dynamic handlers."""

    def __init__(self, name: str = "site") -> None:
        self.name = name
        self._static: dict[str, tuple[str, bytes, bool]] = {}
        self._handlers: dict[str, Callable[[HttpRequest], HttpResponse]] = {}

    def add_page(self, path: str, body: "bytes | str",
                 content_type: str = "text/html",
                 use_content_length: bool = True) -> None:
        if isinstance(body, str):
            body = body.encode("utf-8")
        self._static[path] = (content_type, body, use_content_length)

    def add_handler(self, path: str,
                    handler: Callable[[HttpRequest], HttpResponse]) -> None:
        self._handlers[path] = handler

    def handle(self, request: HttpRequest) -> HttpResponse:
        handler = self._handlers.get(request.path)
        if handler is not None:
            return handler(request)
        entry = self._static.get(request.path)
        if entry is None:
            return HttpResponse.not_found()
        content_type, body, use_content_length = entry
        return HttpResponse.ok(body, content_type,
                               use_content_length=use_content_length)

    def paths(self) -> list[str]:
        return sorted(set(self._static) | set(self._handlers))


def make_download_page(
    site: Website,
    *,
    binary: bytes,
    binary_name: str = "file.tgz",
    page_path: str = "/download.html",
    binary_path: Optional[str] = None,
) -> str:
    """Install the §4.1 download page on a website.

    The page carries exactly the two artifacts netsed targets: the
    relative link ``href=file.tgz`` and the hex MD5SUM of the binary.
    Returns the MD5 hex digest that was published.
    """
    binary_path = binary_path or f"/{binary_name}"
    digest = md5_hexdigest(binary)
    html = (
        "<html><head><title>Download</title></head><body>\n"
        "<h1>Get the software</h1>\n"
        f"<p>Download: <a href={binary_name}>{binary_name}</a></p>\n"
        f"<p>MD5SUM: {digest}</p>\n"
        "</body></html>\n"
    )
    # The page is served HTTP/1.0 close-delimited (no Content-Length),
    # the common dynamic-page style — and the framing that lets a
    # length-growing netsed rewrite arrive intact at the victim.
    site.add_page(page_path, html, use_content_length=False)
    site.add_page(binary_path, binary, content_type="application/octet-stream")
    return digest


def make_news_page(site: Website, *, headline: str = "All quiet today",
                   path: str = "/index.html", script: str = "") -> None:
    """A CNN-style trusted news page (§5.1's scenario).

    ``script`` is inline page script; the legitimate site publishes a
    benign one, and the hostile hotspot's rewriter swaps in an exploit.
    """
    html = (
        "<html><head><title>World News Network</title></head><body>\n"
        f"<h1>{headline}</h1>\n"
        f"<script>{script or 'renderWeatherWidget()'}</script>\n"
        "<p>Trusted journalism since 1980.</p>\n"
        "</body></html>\n"
    )
    site.add_page(path, html)
