"""HTTP/1.0 message serialization and incremental parsing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.errors import ProtocolError

__all__ = ["HttpRequest", "HttpResponse", "HttpStreamParser"]

_CRLF = b"\r\n"
_HEADER_END = b"\r\n\r\n"


@dataclass
class HttpRequest:
    """An HTTP request (GET is all the experiments need, POST supported)."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.0"

    def to_bytes(self) -> bytes:
        headers = dict(self.headers)
        if self.body and "Content-Length" not in headers:
            headers["Content-Length"] = str(len(self.body))
        lines = [f"{self.method} {self.path} {self.version}"]
        lines += [f"{k}: {v}" for k, v in headers.items()]
        return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + self.body

    @classmethod
    def parse_head(cls, head: bytes) -> "HttpRequest":
        text = head.decode("ascii", "replace")
        lines = text.split("\r\n")
        try:
            method, path, version = lines[0].split(" ", 2)
        except ValueError as exc:
            raise ProtocolError(f"malformed request line: {lines[0]!r}") from exc
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip()] = value.strip()
        return cls(method=method, path=path, headers=headers, version=version)


@dataclass
class HttpResponse:
    """An HTTP response.

    ``use_content_length=False`` emits an HTTP/1.0 close-delimited
    response (no Content-Length), the style of period dynamic pages.
    The distinction matters to the §4.1 attack: netsed's replacement
    *grows* the body, so a Content-Length-framed page would be
    truncated by the client before the MD5SUM line — close-delimited
    pages are the ones the attack rewrites cleanly.
    """

    status: int
    reason: str = ""
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.0"
    use_content_length: bool = True

    def to_bytes(self) -> bytes:
        headers = dict(self.headers)
        if self.use_content_length:
            headers.setdefault("Content-Length", str(len(self.body)))
        lines = [f"{self.version} {self.status} {self.reason or _reason(self.status)}"]
        lines += [f"{k}: {v}" for k, v in headers.items()]
        return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + self.body

    @classmethod
    def parse_head(cls, head: bytes) -> "HttpResponse":
        text = head.decode("ascii", "replace")
        lines = text.split("\r\n")
        parts = lines[0].split(" ", 2)
        if len(parts) < 2:
            raise ProtocolError(f"malformed status line: {lines[0]!r}")
        version, status = parts[0], parts[1]
        reason = parts[2] if len(parts) == 3 else ""
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip()] = value.strip()
        try:
            status_code = int(status)
        except ValueError as exc:
            raise ProtocolError(f"bad status code {status!r}") from exc
        return cls(status=status_code, reason=reason, headers=headers, version=version)

    @classmethod
    def ok(cls, body: bytes, content_type: str = "text/html",
           use_content_length: bool = True) -> "HttpResponse":
        return cls(status=200, reason="OK",
                   headers={"Content-Type": content_type}, body=body,
                   use_content_length=use_content_length)

    @classmethod
    def not_found(cls) -> "HttpResponse":
        return cls(status=404, reason="Not Found",
                   headers={"Content-Type": "text/plain"}, body=b"not found")


def _reason(status: int) -> str:
    return {200: "OK", 301: "Moved", 400: "Bad Request", 404: "Not Found",
            500: "Server Error"}.get(status, "")


class HttpStreamParser:
    """Incremental parser for one message arriving over a TCP stream.

    Feed arbitrary byte chunks with :meth:`feed`; :attr:`complete`
    flips once the head plus ``Content-Length`` body have arrived.  For
    responses without a Content-Length, the message is delimited by
    connection close (:meth:`finish_on_close`).
    """

    def __init__(self, kind: str) -> None:
        if kind not in ("request", "response"):
            raise ValueError("kind must be 'request' or 'response'")
        self.kind = kind
        self._buffer = bytearray()
        self._head: Optional[HttpRequest | HttpResponse] = None
        self._body_needed: Optional[int] = None
        self.complete = False

    @property
    def message(self) -> "HttpRequest | HttpResponse | None":
        return self._head if self.complete else None

    def feed(self, data: bytes) -> None:
        if self.complete:
            return
        self._buffer.extend(data)
        if self._head is None:
            idx = bytes(self._buffer).find(_HEADER_END)
            if idx < 0:
                return
            head_raw = bytes(self._buffer[:idx])
            del self._buffer[: idx + 4]
            if self.kind == "request":
                self._head = HttpRequest.parse_head(head_raw)
            else:
                self._head = HttpResponse.parse_head(head_raw)
            length = self._head.headers.get("Content-Length")
            if length is not None:
                self._body_needed = int(length)
            elif self.kind == "request":
                self._body_needed = 0  # bodyless request (GET): complete at head
            else:
                self._body_needed = None  # response delimited by close
        if self._head is not None and self._body_needed is not None:
            if len(self._buffer) >= self._body_needed:
                self._head.body = bytes(self._buffer[: self._body_needed])
                del self._buffer[: self._body_needed]
                self.complete = True

    def finish_on_close(self) -> None:
        """Connection closed: whatever arrived is the body (HTTP/1.0 style)."""
        if self.complete or self._head is None:
            return
        self._head.body = bytes(self._buffer)
        self._buffer.clear()
        self.complete = True

    @property
    def leftover(self) -> bytes:
        """Bytes beyond the completed message (pipelining, unused here)."""
        return bytes(self._buffer) if self.complete else b""
