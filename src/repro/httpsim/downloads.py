"""Downloadable binaries.

A "binary" is a tagged byte blob.  The header marks provenance: the
legitimate build tool stamps ``LEGIT``, the attacker's trojan wrapper
(:mod:`repro.attacks.trojan`) stamps ``TROJN``.  The *bytes differ*,
so the MD5s genuinely differ — which is the whole reason the paper's
attack has to rewrite the published MD5SUM as well as the link.
"""

from __future__ import annotations

__all__ = ["make_binary", "is_trojaned", "LEGIT_MAGIC", "TROJAN_MAGIC"]

LEGIT_MAGIC = b"LEGIT\x7fELF"
TROJAN_MAGIC = b"TROJN\x7fELF"


def make_binary(name: str, size: int, rng) -> bytes:
    """A legitimate binary blob of roughly ``size`` bytes."""
    if size < 16:
        raise ValueError("binary size too small")
    header = LEGIT_MAGIC + name.encode("ascii")[:16].ljust(16, b"\x00")
    body = rng.bytes(max(0, size - len(header)))
    return header + body


def is_trojaned(blob: bytes) -> bool:
    """Does this binary carry the trojan payload marker?"""
    return blob.startswith(TROJAN_MAGIC)
