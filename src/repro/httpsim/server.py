"""HTTP server over simulated TCP."""

from __future__ import annotations

from typing import Optional

from repro.hosts.host import Host
from repro.httpsim.content import Website
from repro.httpsim.messages import HttpRequest, HttpResponse, HttpStreamParser
from repro.netstack.tcp import TcpConnection
from repro.sim.errors import ProtocolError

__all__ = ["HttpServer"]


class HttpServer:
    """One website bound to a host and port (HTTP/1.0, close after response)."""

    def __init__(self, host: Host, website: Website, port: int = 80) -> None:
        self.host = host
        self.website = website
        self.port = port
        self.listener = host.tcp_listen(port, self._on_connection)
        self.requests_served = 0
        self.request_log: list[HttpRequest] = []

    def _on_connection(self, conn: TcpConnection) -> None:
        parser = HttpStreamParser("request")

        def on_data(data: bytes) -> None:
            if parser.complete:
                return
            try:
                parser.feed(data)
            except ProtocolError:
                conn.abort()
                return
            if parser.complete:
                request = parser.message
                assert isinstance(request, HttpRequest)
                self.requests_served += 1
                self.request_log.append(request)
                response = self.website.handle(request)
                self.host.sim.trace.emit(
                    "http.request", self.host.name,
                    path=request.path, status=response.status,
                    client=str(conn.remote_ip),
                )
                conn.send(response.to_bytes())
                conn.close()

        conn.on_data = on_data

    def close(self) -> None:
        self.listener.close()
