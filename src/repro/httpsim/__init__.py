"""HTTP over the simulated TCP: server, client, and a victim browser.

The §4.1 experiment's stage is a web page: "a sample target download
web page which contained a downloadable binary, a link to that
downloadable binary and an MD5SUM of that binary."  This package
provides that page, the server that serves it, and a
:class:`~repro.httpsim.browser.Browser` that does what the paper's
victim does — fetch, follow the download link, verify the MD5SUM, and
run the result.
"""

from repro.httpsim.browser import Browser, DownloadOutcome
from repro.httpsim.client import HttpClient
from repro.httpsim.content import Website, make_download_page
from repro.httpsim.downloads import make_binary
from repro.httpsim.messages import HttpRequest, HttpResponse, HttpStreamParser
from repro.httpsim.server import HttpServer

__all__ = [
    "Browser",
    "DownloadOutcome",
    "HttpClient",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "HttpStreamParser",
    "Website",
    "make_binary",
    "make_download_page",
]
