"""DNS answer rewriting from the rogue's forwarding position.

§4.2: "there are many variations on this attack."  This is the obvious
one: instead of rewriting the HTTP stream (netsed), the in-path rogue
rewrites DNS *answers* for chosen names, steering the victim's browser
to an attacker server outright.  Compared to the netsed variant it is
cruder (the victim's address bar — if it had one — and the page's
published MD5SUM are not fixed up) but far simpler: one A record.

Unlike :class:`repro.attacks.dns_spoof.DnsSpoofer` (which *races* the
real server from a bystander position and needs query visibility),
this attacker is the path: the genuine answer flows through its
forwarding code and is modified, not outrun.
"""

from __future__ import annotations

from typing import Optional

from repro.hosts.host import Host
from repro.netstack.addressing import IPv4Address
from repro.netstack.dns import DNS_PORT, DnsMessage
from repro.netstack.ipv4 import PROTO_UDP, IPv4Packet
from repro.netstack.udp import UdpDatagram
from repro.sim.errors import ProtocolError

__all__ = ["DnsAnswerRewriter"]


class DnsAnswerRewriter:
    """Rewrite forwarded DNS answers for selected names.

    Parameters
    ----------
    host:
        The in-path box (the rogue gateway).
    lies:
        name → attacker IP.  Non-listed names pass through honestly —
        selective lying is far harder to notice than a broken resolver.
    """

    def __init__(self, host: Host, lies: dict[str, "IPv4Address | str"]) -> None:
        self.host = host
        self.lies = {name.lower(): IPv4Address(ip) for name, ip in lies.items()}
        self.rewritten = 0
        self._original_receive = None
        self.active = False

    def install(self) -> "DnsAnswerRewriter":
        if self.active:
            return self
        self._original_receive = self.host.receive_ip

        def rewriting_receive(packet: IPv4Packet, iface) -> None:
            self._original_receive(self._maybe_rewrite(packet), iface)

        self.host.receive_ip = rewriting_receive  # type: ignore[method-assign]
        self.active = True
        return self

    def remove(self) -> None:
        if self.active and self._original_receive is not None:
            self.host.receive_ip = self._original_receive  # type: ignore[method-assign]
            self.active = False

    # ------------------------------------------------------------------
    def _maybe_rewrite(self, packet: IPv4Packet) -> IPv4Packet:
        if packet.proto != PROTO_UDP:
            return packet
        try:
            dgram = UdpDatagram.from_bytes(packet.payload, packet.src, packet.dst,
                                           verify_checksum=False)
        except ProtocolError:
            return packet
        if dgram.src_port != DNS_PORT:
            return packet
        try:
            msg = DnsMessage.from_bytes(dgram.payload)
        except ProtocolError:
            return packet
        if not msg.is_response or not msg.answers:
            return packet
        lie = self.lies.get(msg.name.lower())
        if lie is None:
            return packet
        self.rewritten += 1
        self.host.sim.trace.emit("dnsmitm.rewrite", self.host.name,
                                 name=msg.name, lie=str(lie))
        forged = DnsMessage(txn_id=msg.txn_id, name=msg.name,
                            is_response=True, answers=(lie,))
        new_dgram = UdpDatagram(src_port=dgram.src_port, dst_port=dgram.dst_port,
                                payload=forged.to_bytes())
        return packet.with_payload(new_dgram.to_bytes(packet.src, packet.dst))
