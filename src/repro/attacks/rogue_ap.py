"""The rogue access point of Figure 1, assembled exactly as in §4.1.

One laptop ("the gateway machine"), two wireless cards:

* ``eth1`` — the Netgear MA101 stand-in: a *managed* client that
  authenticates to the real CORP network "as a valid client", using
  the WEP key and (optionally) a sniffed, spoofed MAC address;
* ``wlan0`` — the D-Link DWL-650 stand-in in Master mode: a soft AP
  that "emulate[s] a valid AP as best it can ... the same SSID and
  require[s] the same WEP key", on a different channel, with the
  legitimate AP's BSSID cloned (Fig. 1 shows both as AA:BB:CC:DD).

parprouted bridges the two; Netfilter + netsed stage the download MITM.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.dns_mitm import DnsAnswerRewriter
from repro.attacks.netsed import NetsedProxy, NetsedRule
from repro.attacks.parprouted import Parprouted
from repro.crypto.wep import WepKey
from repro.dot11.frames import FrameSubtype
from repro.dot11.mac import MacAddress
from repro.dot11.seqctl import MirroredSequenceCounter
from repro.hosts.ap_core import SoftApInterface
from repro.hosts.host import Host
from repro.hosts.linuxconf import LinuxBox
from repro.hosts.nic import WirelessInterface
from repro.netstack.addressing import IPv4Address
from repro.radio.medium import Medium
from repro.radio.propagation import Position
from repro.sim.kernel import Simulator

__all__ = ["RogueAccessPoint"]


class RogueAccessPoint:
    """The attacker's dual-radio gateway machine."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        position: Position,
        *,
        ssid: str = "CORP",
        clone_bssid: MacAddress,
        legit_channel: int = 1,
        rogue_channel: int = 6,
        wep_key: Optional[WepKey] = None,
        wpa_psk: Optional[bytes] = None,
        client_mac: Optional[MacAddress] = None,
        eth1_ip: str = "10.0.0.25",
        wlan0_ip: str = "10.0.0.24",
        gateway_ip: str = "10.0.0.1",
        name: str = "rogue-gw",
        tx_power_dbm: float = 18.0,
        mirror_seqctl: bool = False,
        beacon_jitter_s: float = 0.0,
        match_beacon_cadence: bool = False,
    ) -> None:
        self.sim = sim
        self.ssid = ssid
        self.gateway_ip = IPv4Address(gateway_ip)
        self.host = Host(sim, name)
        if client_mac is None:
            client_mac = MacAddress.random(sim.rng.substream(f"mac.{name}"))
        # The managed card, associating to the real network as a valid client.
        self.eth1 = WirelessInterface("eth1", client_mac, medium, position,
                                      tx_power_dbm=tx_power_dbm)
        self.host.add_interface(self.eth1)
        # --- WIDS-evasion knobs (the rogue/detector arms race) --------
        # match_beacon_cadence: discipline the soft-AP's TBTT to the
        # crystal-exact 100 TU the legitimate AP keeps, defeating
        # beacon-jitter analysis; beacon_jitter_s models the sloppy
        # default soft-AP scheduler the analysis exists to catch.
        self.mirror_seqctl = mirror_seqctl
        self.beacon_jitter_s = 0.0 if match_beacon_cadence else beacon_jitter_s
        self._mirror: Optional[MirroredSequenceCounter] = None
        if mirror_seqctl:
            # Shadow the legitimate AP's counter via the upstream card,
            # which already sits on the legit channel hearing its BSS.
            self._mirror = MirroredSequenceCounter()

            def overhear(frame, _rssi: float, channel: int) -> None:
                if (channel == legit_channel
                        and frame.addr2 == clone_bssid
                        and frame.subtype is not FrameSubtype.ACK):
                    self._mirror.observe(frame.seq)

            self.eth1.frame_tap = overhear
        # The master-mode card: the rogue BSS itself.
        self.wlan0 = SoftApInterface(
            "wlan0", medium, position,
            bssid=clone_bssid, ssid=ssid, channel=rogue_channel,
            wep_key=wep_key, wpa_psk=wpa_psk, tx_power_dbm=tx_power_dbm,
            seqctl=self._mirror, beacon_jitter_s=self.beacon_jitter_s,
        )
        self.host.add_interface(self.wlan0)
        self.box = LinuxBox(self.host)
        self.parprouted = Parprouted(self.host, "wlan0", "eth1")
        self.netsed: Optional[NetsedProxy] = None
        self.dns_mitm: Optional[DnsAnswerRewriter] = None
        self._wep = wep_key
        self._wpa_psk = wpa_psk
        self._legit_channel = legit_channel
        self._eth1_ip = eth1_ip
        self._wlan0_ip = wlan0_ip

    # ------------------------------------------------------------------
    # bring-up (Appendix A)
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Associate upstream and run the Appendix A bridge script."""
        # "The attacker will first authenticate to the existing network
        #  as a valid client with one WiFi card."
        self.eth1.join(self.ssid, wep_key=self._wep, wpa_psk=self._wpa_psk,
                       channels=(self._legit_channel,))
        # Appendix A, line for line (wlan0 takes a /32 so victim routes
        # come exclusively from parprouted's host routes).
        self.box.sh("echo 1 > /proc/sys/net/ipv4/ip_forward")
        self.box.sh(f"ifconfig wlan0 {self._wlan0_ip} netmask 255.255.255.255")
        self.box.sh(f"ifconfig eth1 {self._eth1_ip} netmask 255.255.255.0")
        self.parprouted.start()
        self.box.sh(f"route add -host {self.gateway_ip} dev eth1")
        self.box.sh(f"route add default gw {self.gateway_ip}")
        self.sim.trace.emit("rogue.start", self.host.name,
                            ssid=self.ssid, channel=self.wlan0.core.channel,
                            bssid=str(self.wlan0.core.bssid))

    def stop(self) -> None:
        self.parprouted.stop()
        if self.wlan0.core is not None:
            self.wlan0.core.shutdown()
        self.eth1.leave()
        if self.netsed is not None:
            self.netsed.close()

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    @property
    def upstream_associated(self) -> bool:
        return self.eth1.associated

    def captured_clients(self) -> list[MacAddress]:
        """Stations currently associated to the rogue BSS."""
        if self.wlan0.core is None:
            return []
        return self.wlan0.core.associated_clients()

    # ------------------------------------------------------------------
    # the §4.1 download MITM
    # ------------------------------------------------------------------
    def install_download_mitm(
        self,
        target_ip: "IPv4Address | str",
        *,
        rules: "list[NetsedRule | str]",
        listen_port: int = 10101,
        streaming: bool = False,
    ) -> NetsedProxy:
        """Install the DNAT rule and start netsed — §4.1's two commands.

        ``rules`` are netsed's ``s/old/new`` strings, e.g.::

            ["s/href=file.tgz/href=http:%2f%2f203.0.113.66%2ffile.tgz/",
             "s/<real md5>/<fake md5>/"]
        """
        target_ip = IPv4Address(target_ip)
        self.box.sh(
            f"iptables -t nat -A PREROUTING -p tcp -d {target_ip} "
            f"--dport 80 -j DNAT --to {self._wlan0_ip}:{listen_port}"
        )
        self.netsed = NetsedProxy(self.host, listen_port, target_ip, 80,
                                  rules, streaming=streaming)
        self.sim.trace.emit("rogue.mitm_armed", self.host.name,
                            target=str(target_ip), port=listen_port)
        return self.netsed

    def install_dns_mitm(self, lies: dict) -> DnsAnswerRewriter:
        """The §4.2 variation: lie in forwarded DNS answers instead of
        rewriting HTTP.  ``lies`` maps hostnames to attacker IPs."""
        self.dns_mitm = DnsAnswerRewriter(self.host, lies).install()
        self.sim.trace.emit("rogue.dns_mitm_armed", self.host.name,
                            names=sorted(lies))
        return self.dns_mitm
