"""Deauthentication forcing.

§4: "If the attacker knows the target clients MAC address he could
force the clients disassociation from the legitimate AP until the
client associates with the Rogue AP."

802.11b management frames are unauthenticated, so the attacker simply
transmits deauthentication frames whose transmitter/BSSID fields are
the legitimate AP's.  The victim's standard state machine obeys every
one (see :meth:`WirelessInterface._on_deauth`), accumulates selection
penalty against the legitimate AP, and eventually picks the rogue.
"""

from __future__ import annotations

from typing import Optional

from repro.dot11.frames import FrameSubtype, ReasonCode, make_deauth
from repro.dot11.mac import BROADCAST, MacAddress
from repro.dot11.seqctl import MirroredSequenceCounter, SequenceCounter
from repro.obs.runtime import obs_metrics
from repro.radio.medium import Medium, RadioPort
from repro.radio.propagation import Position
from repro.sim.kernel import Simulator

__all__ = ["DeauthAttacker"]


class DeauthAttacker:
    """Forged-deauth injector against one BSS.

    Parameters
    ----------
    target:
        Victim MAC for unicast deauth; ``None`` floods broadcast
        deauths (the ablation comparison in E-DEAUTH).
    rate_hz:
        Injection rate; the experiment's swept parameter.
    mirror_seqctl:
        WIDS evasion: listen to the spoofed AP and stamp injected
        deauths as successors of its overheard sequence numbers
        instead of from an arbitrary counter, defeating large-gap
        analysis.  Turning this on makes the injector's radio a
        *receiver*, which (unlike pure observation) legitimately
        changes the simulated world.
    reason:
        The 802.11 reason code stamped into every forged frame.
        Real tools let the operator pick one (aireplay-ng's ``-a``
        deauths default to code 7); plausible codes matter because
        some clients log them and some IDSes profile them.  Must be
        in the valid range 1..65535 (0 is reserved).
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        position: Position,
        *,
        ap_bssid: MacAddress,
        channel: int,
        target: Optional[MacAddress] = None,
        rate_hz: float = 10.0,
        name: str = "deauth-attacker",
        mirror_seqctl: bool = False,
        reason: int = ReasonCode.PREV_AUTH_EXPIRED,
    ) -> None:
        self.sim = sim
        self.ap_bssid = ap_bssid
        self.target = target
        self.rate_hz = rate_hz
        reason = int(reason)
        if not 1 <= reason <= 0xFFFF:
            raise ValueError(f"802.11 reason code out of range: {reason}")
        self.reason = reason
        self.port = RadioPort(name=name, position=position, channel=channel,
                              tx_power_dbm=18.0, promiscuous=mirror_seqctl)
        medium.attach(self.port)
        if mirror_seqctl:
            # Evasion mode: shadow the AP's real counter.
            self.seqctl = MirroredSequenceCounter()
            self.port.on_receive = self._overhear
        else:
            # The injector spoofs the AP's sequence space poorly — real
            # injectors pick arbitrary numbers, which is exactly what the
            # §2.3 sequence-control monitor detects.
            self.seqctl = SequenceCounter(sim.rng.substream(f"seq.{name}").randrange(0, 4096))
        self.frames_injected = 0
        self._stop = None

    def _overhear(self, frame, _rssi: float, _channel: int) -> None:
        if frame.addr2 == self.ap_bssid and frame.subtype is not FrameSubtype.ACK:
            self.seqctl.observe(frame.seq)

    def start(self) -> None:
        if self._stop is not None:
            return
        self._stop = self.sim.every(1.0 / self.rate_hz, self._inject)
        self.sim.trace.emit("deauth.start", self.port.name,
                            target=str(self.target) if self.target else "broadcast",
                            rate_hz=self.rate_hz)

    def stop(self) -> None:
        if self._stop is not None:
            self._stop()
            self._stop = None

    def _inject(self) -> None:
        dest = self.target if self.target is not None else BROADCAST
        frame = make_deauth(self.ap_bssid, dest, self.ap_bssid,
                            reason=self.reason,
                            seq=self.seqctl.next())
        self.port.transmit(frame)
        self.frames_injected += 1
        m = obs_metrics()
        if m is not None:
            m.incr("attack.deauth.injected")
