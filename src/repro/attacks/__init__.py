"""Attack implementations.

Everything the paper performs or references: the rogue access point
with its parprouted bridge and netsed rewriter (§4), deauthentication
forcing (§4), passive sniffing and Airsnort/FMS WEP key recovery
(§2.1, §4), MAC spoofing against address filters (§2.1), the wired
MITM baselines — ARP and DNS spoofing (§1.2) — and the hostile
hotspot (§1.3.2).

These exist to be measured.  They run only against the simulated
substrate in this repository.
"""

from repro.attacks.airsnort import AirsnortAttack
from repro.attacks.arp_spoof import ArpSpoofer
from repro.attacks.deauth import DeauthAttacker
from repro.attacks.dns_mitm import DnsAnswerRewriter
from repro.attacks.dns_spoof import DnsSpoofer
from repro.attacks.hotspot import HostileHotspot
from repro.attacks.mac_spoof import observe_client_macs, spoof_mac
from repro.attacks.netsed import NetsedProxy, NetsedRule, StreamingRewriter
from repro.attacks.parprouted import Parprouted
from repro.attacks.rogue_ap import RogueAccessPoint
from repro.attacks.sniffer import MonitorSniffer
from repro.attacks.tamper import InPathTamperer, compromise_gateway
from repro.attacks.trojan import trojanize
from repro.attacks.wired_mitm import MitmPath, wired_vs_wireless_paths

__all__ = [
    "AirsnortAttack",
    "ArpSpoofer",
    "DeauthAttacker",
    "DnsAnswerRewriter",
    "DnsSpoofer",
    "HostileHotspot",
    "InPathTamperer",
    "MitmPath",
    "MonitorSniffer",
    "NetsedProxy",
    "NetsedRule",
    "Parprouted",
    "RogueAccessPoint",
    "StreamingRewriter",
    "compromise_gateway",
    "observe_client_macs",
    "spoof_mac",
    "trojanize",
    "wired_vs_wireless_paths",
]
