"""ARP cache poisoning — the wired MITM baseline.

§1.2: "In a wired network, one either needs to spoof DNS requests or
ARP requests or compromise a valid gateway machine to obtain access to
the clients traffic."  This module is the ARP option: the attacker —
who must already have a port on the victim's LAN — tells the victim
that the gateway's IP is at the attacker's MAC, and the gateway that
the victim's IP is too, then forwards between them.

E-WIRED uses it to show the paper's point: the wired attack works but
needs *inside* access; the wireless one needs only proximity.
"""

from __future__ import annotations

from repro.hosts.host import Host
from repro.netstack.addressing import IPv4Address
from repro.netstack.arp import ArpPacket
from repro.netstack.ethernet import ETHERTYPE_ARP
from repro.dot11.mac import MacAddress

__all__ = ["ArpSpoofer"]


class ArpSpoofer:
    """Bidirectional ARP poisoning between a victim and its gateway."""

    def __init__(
        self,
        attacker: Host,
        iface_name: str,
        *,
        victim_ip: "IPv4Address | str",
        victim_mac: MacAddress,
        gateway_ip: "IPv4Address | str",
        gateway_mac: MacAddress,
        interval_s: float = 1.0,
    ) -> None:
        self.host = attacker
        self.iface = attacker.interfaces[iface_name]
        self.victim_ip = IPv4Address(victim_ip)
        self.victim_mac = victim_mac
        self.gateway_ip = IPv4Address(gateway_ip)
        self.gateway_mac = gateway_mac
        self.interval_s = interval_s
        self.poisons_sent = 0
        self._stop = None

    def start(self) -> None:
        """Begin poisoning and enable relay so the victim stays online.

        Forwarding matters operationally: a blackholing MITM is noticed
        immediately; a forwarding one is silent.
        """
        self.host.ip_forward = True
        # Pin true next-hops so our own relays don't use poisoned state.
        table = self.host.arp_tables[self.iface.name]
        table.learn(self.victim_ip, self.victim_mac, self.host.sim.now)
        table.learn(self.gateway_ip, self.gateway_mac, self.host.sim.now)
        self.host.routing.add_host(self.victim_ip, self.iface.name)
        self.host.routing.add_host(self.gateway_ip, self.iface.name)
        self._poison()
        self._stop = self.host.sim.every(self.interval_s, self._poison)
        self.host.sim.trace.emit("arpspoof.start", self.host.name,
                                 victim=str(self.victim_ip), gw=str(self.gateway_ip))

    def stop(self) -> None:
        if self._stop is not None:
            self._stop()
            self._stop = None

    def _poison(self) -> None:
        me = self.iface.mac
        # Victim learns: gateway-IP is-at attacker-MAC.
        to_victim = ArpPacket.reply(sender_mac=me, sender_ip=self.gateway_ip,
                                    target_mac=self.victim_mac, target_ip=self.victim_ip)
        self.iface.send_frame_to(self.victim_mac, ETHERTYPE_ARP, to_victim.to_bytes())
        # Gateway learns: victim-IP is-at attacker-MAC.
        to_gateway = ArpPacket.reply(sender_mac=me, sender_ip=self.victim_ip,
                                     target_mac=self.gateway_mac, target_ip=self.gateway_ip)
        self.iface.send_frame_to(self.gateway_mac, ETHERTYPE_ARP, to_gateway.to_bytes())
        self.poisons_sent += 2
