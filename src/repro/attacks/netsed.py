"""netsed: the stream search-and-replace proxy (paper reference [16]).

§4.1 runs::

    # netsed tcp 10101 Target-IP 80 \\
    #     s/href=file.tgz/href=http:%2f%2f.../ \\
    #     s/REALMD5SUM/FAKEMD5SUM/

:class:`NetsedProxy` is that program: it listens on a port (where the
DNAT rule delivers the victim's flows), opens an upstream connection
to the real destination, and rewrites matches in the relayed stream.

Faithfully reproduced limitation (§4.2): "netsed will not match
strings that cross packet boundaries."  The proxy applies its rules
*per received segment*, so a pattern split across two TCP segments
survives — measured by the E-NETSED benchmark.  The "could easily be
addressed" fix the paper mentions is :class:`StreamingRewriter`, which
withholds a pattern-length tail between chunks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.hosts.host import Host
from repro.netstack.addressing import IPv4Address
from repro.netstack.tcp import TcpConnection
from repro.obs.lineage import flight_recorder
from repro.obs.runtime import obs_metrics
from repro.sim.errors import ConfigurationError

__all__ = ["NetsedProxy", "NetsedRule", "StreamingRewriter", "parse_rule"]


def _printable(data: bytes) -> str:
    """Escape a payload excerpt for hop details / terminal output."""
    return data.decode("latin-1").encode("unicode_escape").decode("ascii")


def _diff_excerpt(before: bytes, after: bytes, *, context: int = 24,
                  width: int = 72) -> tuple[str, str]:
    """Aligned excerpts of ``before``/``after`` around their first difference."""
    i = min(len(before), len(after))
    for k, (a, b) in enumerate(zip(before, after)):
        if a != b:
            i = k
            break
    lo = max(0, i - context)
    return _printable(before[lo:lo + width]), _printable(after[lo:lo + width])


@dataclass(frozen=True)
class NetsedRule:
    """One ``s/old/new`` rule."""

    old: bytes
    new: bytes

    def apply(self, data: bytes) -> tuple[bytes, int]:
        """Replace all occurrences; returns (rewritten, hit count)."""
        count = data.count(self.old)
        if count:
            data = data.replace(self.old, self.new)
        return data, count


def parse_rule(text: str) -> NetsedRule:
    """Parse netsed's ``s/old/new`` command-line rule syntax."""
    if not text.startswith("s/"):
        raise ConfigurationError(f"bad netsed rule {text!r}")
    body = text[2:]
    old, sep, new = body.partition("/")
    if not sep or not old:
        raise ConfigurationError(f"bad netsed rule {text!r}")
    return NetsedRule(old.encode("ascii"), new.rstrip("/").encode("ascii"))


class StreamingRewriter:
    """Boundary-safe rewriter: the improvement §4.2 says attackers could make.

    Holds back up to ``max(len(old)) - 1`` bytes between chunks so a
    pattern split across TCP segments is still seen whole.  Call
    :meth:`flush` at stream end to release the held tail.
    """

    def __init__(self, rules: list[NetsedRule]) -> None:
        self.rules = rules
        self._tail = b""
        self._holdback = max((len(r.old) for r in rules), default=1) - 1
        self.replacements = 0

    def process(self, chunk: bytes) -> bytes:
        data = self._tail + chunk
        for rule in self.rules:
            data, hits = rule.apply(data)
            self.replacements += hits
        if self._holdback > 0 and len(data) > self._holdback:
            self._tail = data[-self._holdback:]
            return data[:-self._holdback]
        if self._holdback > 0:
            self._tail = data
            return b""
        self._tail = b""
        return data

    def flush(self) -> bytes:
        out, self._tail = self._tail, b""
        return out


class _PerSegmentRewriter:
    """netsed's real behaviour: rules applied to each segment separately."""

    def __init__(self, rules: list[NetsedRule]) -> None:
        self.rules = rules
        self.replacements = 0

    def process(self, chunk: bytes) -> bytes:
        for rule in self.rules:
            chunk, hits = rule.apply(chunk)
            self.replacements += hits
        return chunk

    def flush(self) -> bytes:
        return b""


class NetsedProxy:
    """The TCP rewriting proxy.

    Parameters
    ----------
    host:
        The gateway machine the proxy runs on.
    listen_port:
        Local port (§4.1 uses 10101); the PREROUTING DNAT rule points here.
    target_ip / target_port:
        The real upstream destination.
    rules:
        ``s/old/new`` strings or :class:`NetsedRule` objects.
    streaming:
        False (default) = faithful per-segment netsed; True = the
        boundary-safe improved rewriter (ablation knob).
    """

    def __init__(
        self,
        host: Host,
        listen_port: int,
        target_ip: "IPv4Address | str",
        target_port: int,
        rules: "list[NetsedRule | str]",
        *,
        streaming: bool = False,
        rewrite_upstream: bool = False,
    ) -> None:
        self.host = host
        self.listen_port = listen_port
        self.target_ip = IPv4Address(target_ip)
        self.target_port = target_port
        self.rules = [parse_rule(r) if isinstance(r, str) else r for r in rules]
        self.streaming = streaming
        self.rewrite_upstream = rewrite_upstream
        self.listener = host.tcp_listen(listen_port, self._on_client)
        self.connections_proxied = 0
        self.total_replacements = 0

    def _make_rewriter(self):
        return (StreamingRewriter(self.rules) if self.streaming
                else _PerSegmentRewriter(self.rules))

    def close(self) -> None:
        self.listener.close()

    # ------------------------------------------------------------------
    # relaying
    # ------------------------------------------------------------------
    def _on_client(self, client: TcpConnection) -> None:
        self.connections_proxied += 1
        m = obs_metrics()
        if m is not None:
            m.incr("attack.netsed.connections")
        rec = flight_recorder()
        if rec is not None and rec.current() is not None:
            rec.hop("netsed", "accept", host=self.host.name,
                    t=self.host.sim.now, client=str(client.remote_ip),
                    upstream=f"{self.target_ip}:{self.target_port}")
        upstream = self.host.tcp_connect(self.target_ip, self.target_port)
        down_rw = self._make_rewriter()          # server -> client direction
        up_rw = self._make_rewriter() if self.rewrite_upstream else None
        pending_up: list[bytes] = []
        state = {"up_established": False, "closing": False}

        def pump_upstream(data: bytes) -> None:
            if up_rw is not None:
                data = up_rw.process(data)
            if state["up_established"]:
                if data:
                    upstream.send(data)
            else:
                pending_up.append(data)

        def on_up_established() -> None:
            state["up_established"] = True
            for chunk in pending_up:
                if chunk:
                    upstream.send(chunk)
            pending_up.clear()

        def on_up_data(data: bytes) -> None:
            hits_before = down_rw.replacements
            rewritten = down_rw.process(data)
            rec = flight_recorder()
            if rec is not None and rec.current() is not None \
                    and down_rw.replacements > hits_before:
                # The MITM's defining moment: record which rules fired
                # and an aligned before/after excerpt of the payload.
                before, after = _diff_excerpt(data, rewritten)
                rules = [f"s/{_printable(r.old)}/{_printable(r.new)}/"
                         for r in self.rules if r.old in data]
                rec.hop("netsed", "rewrite", host=self.host.name,
                        t=self.host.sim.now,
                        replacements=down_rw.replacements - hits_before,
                        rules=rules, before=before, after=after,
                        bytes_in=len(data), bytes_out=len(rewritten))
            if rewritten:
                client.send(rewritten)

        def finish_down() -> None:
            if state["closing"]:
                return
            state["closing"] = True
            tail = down_rw.flush()
            if tail:
                client.send(tail)
            self.total_replacements += down_rw.replacements
            if up_rw is not None:
                self.total_replacements += up_rw.replacements
            m = obs_metrics()
            if m is not None:
                rewrites = down_rw.replacements + (up_rw.replacements if up_rw else 0)
                if rewrites:
                    m.incr("attack.netsed.rewrites", rewrites)
            if down_rw.replacements:
                self.host.sim.trace.emit("netsed.rewrite", self.host.name,
                                         replacements=down_rw.replacements,
                                         client=str(client.remote_ip))
            client.close()

        def finish_up() -> None:
            if up_rw is not None:
                tail = up_rw.process(b"") + up_rw.flush()
                if tail and state["up_established"]:
                    upstream.send(tail)
            upstream.close()

        client.on_data = pump_upstream
        client.on_close = finish_up
        client.on_reset = lambda: upstream.abort()
        upstream.on_established = on_up_established
        upstream.on_data = on_up_data
        upstream.on_close = finish_down
        upstream.on_reset = lambda: client.abort()
