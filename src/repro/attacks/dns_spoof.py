"""DNS response spoofing — the other wired MITM baseline of §1.2.

The attacker races the real DNS server: if it can *see* the victim's
query (hub, or wireless air), it copies the transaction id and answers
first with an attacker-controlled address.  On a switched LAN the
query is invisible and the race can't even start — the structural
difference E-WIRED measures.
"""

from __future__ import annotations

from typing import Optional

from repro.dot11.mac import MacAddress
from repro.hosts.host import Host
from repro.netstack.addressing import IPv4Address
from repro.netstack.dns import DNS_PORT, DnsMessage
from repro.netstack.ethernet import ETHERTYPE_IPV4
from repro.netstack.ipv4 import PROTO_UDP, IPv4Packet
from repro.netstack.udp import UdpDatagram
from repro.sim.errors import ProtocolError

__all__ = ["DnsSpoofer"]


class DnsSpoofer:
    """Race DNS answers for selected names using a promiscuous tap.

    The attacker host's interface must actually receive the victim's
    query frames (promiscuous wired port on a hub, or a wireless
    monitor feed) — attach with :meth:`arm`.
    """

    def __init__(self, attacker: Host, iface_name: str,
                 lies: dict[str, "IPv4Address | str"]) -> None:
        self.host = attacker
        self.iface = attacker.interfaces[iface_name]
        self.lies = {name.lower(): IPv4Address(ip) for name, ip in lies.items()}
        self.queries_seen = 0
        self.responses_forged = 0

    def arm(self) -> None:
        self.host.l2_tap = self._tap

    def disarm(self) -> None:
        self.host.l2_tap = None

    def _tap(self, iface, src_mac: MacAddress, dst_mac: MacAddress,
             ethertype: int, payload: bytes) -> None:
        if iface is not self.iface or ethertype != ETHERTYPE_IPV4:
            return
        try:
            packet = IPv4Packet.from_bytes(payload)
            if packet.proto != PROTO_UDP:
                return
            dgram = UdpDatagram.from_bytes(packet.payload, packet.src, packet.dst,
                                           verify_checksum=False)
            if dgram.dst_port != DNS_PORT:
                return
            query = DnsMessage.from_bytes(dgram.payload)
        except ProtocolError:
            return
        if query.is_response:
            return
        self.queries_seen += 1
        lie = self.lies.get(query.name.lower())
        if lie is None:
            return
        # Forge the response: source-spoofed as the real server, same
        # transaction id, straight back at L2 so it beats the real one.
        forged = query.answered(lie)
        reply_dgram = UdpDatagram(src_port=DNS_PORT, dst_port=dgram.src_port,
                                  payload=forged.to_bytes())
        reply_packet = IPv4Packet(src=packet.dst, dst=packet.src, proto=PROTO_UDP,
                                  payload=reply_dgram.to_bytes(packet.dst, packet.src))
        self.iface.send_frame_to(src_mac, ETHERTYPE_IPV4, reply_packet.to_bytes())
        self.responses_forged += 1
        self.host.sim.trace.emit("dnsspoof.forged", self.host.name,
                                 name=query.name, lie=str(lie))
