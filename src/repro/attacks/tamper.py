"""In-path traffic tampering from a forwarding position.

Once an attacker *is* the path — a hostile hotspot's gateway (§1.3.2),
a compromised legitimate gateway (§1.2's third wired MITM), or the
rogue bridge itself — tampering is a hook on the forwarding function.
:class:`InPathTamperer` is that hook, with two modes:

* ``replace``: length-preserving byte substitution in matching TCP
  payloads (how the hotspot injects exploit script into §5.1's pages);
* ``corrupt``: flip bits in matching TCP payloads — what a rogue can
  do to traffic it cannot read, e.g. a VPN's port-22 stream.  The §5
  countermeasure's integrity layer turns this from silent compromise
  into a detected failure (E2E-tested fail-closed behaviour).

Length preservation in ``replace`` mode is not cosmetic: an in-path
rewriter that changes segment lengths desynchronizes the endpoints'
sequence numbers (netsed avoids this only because it *terminates* the
TCP connection instead of rewriting in flight).
"""

from __future__ import annotations

from typing import Optional

from repro.hosts.host import Host
from repro.netstack.ipv4 import PROTO_TCP, IPv4Packet
from repro.netstack.tcp import TcpSegment

__all__ = ["InPathTamperer", "compromise_gateway"]


class InPathTamperer:
    """Rewrites or corrupts TCP payloads crossing a forwarding host.

    Parameters
    ----------
    host:
        The in-path box (gateway, rogue bridge, hotspot gateway).
    rules:
        ``(old, new)`` byte pairs for ``replace`` mode; ``new`` is
        padded/trimmed to ``len(old)``.
    src_port / dst_port:
        Match direction: e.g. ``src_port=80`` tampers HTTP responses,
        ``dst_port=22`` corrupts client→server SSH traffic.
    mode:
        ``"replace"`` or ``"corrupt"``.
    corrupt_nth:
        In corrupt mode, damage every Nth matching payload (1 = all).
    """

    def __init__(
        self,
        host: Host,
        *,
        rules: Optional[list[tuple[bytes, bytes]]] = None,
        src_port: Optional[int] = None,
        dst_port: Optional[int] = None,
        mode: str = "replace",
        corrupt_nth: int = 1,
    ) -> None:
        if mode not in ("replace", "corrupt"):
            raise ValueError("mode must be 'replace' or 'corrupt'")
        if mode == "replace" and not rules:
            raise ValueError("replace mode needs rules")
        self.host = host
        self.rules = list(rules or [])
        self.src_port = src_port
        self.dst_port = dst_port
        self.mode = mode
        self.corrupt_nth = max(1, corrupt_nth)
        self.tampered = 0
        self._matched = 0
        self._original_receive = None
        self.active = False

    def install(self) -> "InPathTamperer":
        if self.active:
            return self
        self._original_receive = self.host.receive_ip

        def tampering_receive(packet: IPv4Packet, iface) -> None:
            self._original_receive(self._maybe_tamper(packet), iface)

        self.host.receive_ip = tampering_receive  # type: ignore[method-assign]
        self.active = True
        return self

    def remove(self) -> None:
        if self.active and self._original_receive is not None:
            self.host.receive_ip = self._original_receive  # type: ignore[method-assign]
            self.active = False

    # ------------------------------------------------------------------
    def _maybe_tamper(self, packet: IPv4Packet) -> IPv4Packet:
        if packet.proto != PROTO_TCP:
            return packet
        try:
            segment = TcpSegment.from_bytes(packet.payload, packet.src,
                                            packet.dst, verify_checksum=False)
        except Exception:
            return packet
        if not segment.payload:
            return packet
        if self.src_port is not None and segment.src_port != self.src_port:
            return packet
        if self.dst_port is not None and segment.dst_port != self.dst_port:
            return packet
        self._matched += 1
        payload = segment.payload
        if self.mode == "replace":
            changed = False
            for old, new in self.rules:
                if old in payload:
                    payload = payload.replace(
                        old, new.ljust(len(old))[: len(old)])
                    changed = True
            if not changed:
                return packet
        else:  # corrupt
            if self._matched % self.corrupt_nth != 0:
                return packet
            mid = len(payload) // 2
            payload = payload[:mid] + bytes([payload[mid] ^ 0xFF]) + payload[mid + 1:]
        self.tampered += 1
        self.host.sim.trace.emit("tamper.hit", self.host.name,
                                 mode=self.mode, dst=str(packet.dst))
        new_segment = TcpSegment(
            src_port=segment.src_port, dst_port=segment.dst_port,
            seq=segment.seq, ack=segment.ack, flags=segment.flags,
            window=segment.window, payload=payload, urgent=segment.urgent)
        return packet.with_payload(new_segment.to_bytes(packet.src, packet.dst))


def compromise_gateway(router: Host, *, rules: list[tuple[bytes, bytes]],
                       src_port: int = 80) -> InPathTamperer:
    """§1.2's third wired MITM: "compromise a valid gateway machine".

    Installs a response-rewriting tamperer on a legitimate router —
    no spoofing needed; the attacker owns the path outright.
    """
    tamperer = InPathTamperer(router, rules=rules, src_port=src_port,
                              mode="replace")
    tamperer.install()
    router.sim.trace.emit("gateway.compromised", router.name)
    return tamperer
