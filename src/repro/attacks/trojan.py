"""Trojaned binaries.

"The net effect of doing these replacements is to replace the valid
HTML link with a link to a trojaned version of the software desired by
the client" (§4.1).  :func:`trojanize` produces that version: same
name, different bytes, attacker payload marker — and therefore a
different MD5, which is why the attack must also rewrite the page's
published digest.
"""

from __future__ import annotations

from repro.httpsim.content import Website
from repro.httpsim.downloads import LEGIT_MAGIC, TROJAN_MAGIC

__all__ = ["trojanize", "build_trojan_site"]


def trojanize(binary: bytes) -> bytes:
    """Wrap a legitimate binary with the trojan payload marker.

    Keeps the original bytes (the trojan still has to *work* or the
    victim notices), swapping only the provenance header.
    """
    if binary.startswith(LEGIT_MAGIC):
        return TROJAN_MAGIC + binary[len(LEGIT_MAGIC):]
    return TROJAN_MAGIC + binary


def build_trojan_site(original_binary: bytes, binary_name: str = "file.tgz") -> tuple[Website, bytes, str]:
    """The attacker's download host: serves the trojaned binary.

    Returns (website, trojan_bytes, path).  §4.1's replacement link
    points here: ``href=http:%2f%2f<attacker>%2ffile.tgz``.
    """
    trojan = trojanize(original_binary)
    site = Website("evil-downloads")
    path = f"/{binary_name}"
    site.add_page(path, trojan, content_type="application/octet-stream")
    return site, trojan, path
