"""The Hostile Hotspot (§1.3.2).

"A Hostile Hotspot is a wireless hotspot ... where the owner or
administrator of that hotspot has malicious intentions and tampers
with the traffic it handles."

Unlike the rogue AP, nothing here is spoofed: the hotspot *is* the
legitimate infrastructure of its own little network.  Visiting clients
DHCP from it, resolve DNS through it, and route every byte through its
gateway — so tampering is a one-line rewrite rule, and §5.1's "CNN
user" gets exploit script injected into pages from a perfectly
trustworthy publisher.
"""

from __future__ import annotations

from typing import Optional

from repro.dot11.mac import MacAddress
from repro.hosts.ap_core import SoftApInterface
from repro.hosts.host import Host
from repro.hosts.nic import WiredInterface
from repro.hosts.services import DhcpServerService, DnsServerService
from repro.netstack.addressing import IPv4Address, Network
from repro.netstack.dhcp import LeasePool
from repro.netstack.dns import DnsZone
from repro.netstack.ethernet import LanSegment
from repro.netstack.ipv4 import PROTO_TCP, IPv4Packet
from repro.netstack.tcp import TcpSegment
from repro.radio.medium import Medium
from repro.radio.propagation import Position
from repro.sim.kernel import Simulator

__all__ = ["HostileHotspot"]


class HostileHotspot:
    """An open hotspot whose gateway rewrites forwarded HTTP responses.

    Parameters
    ----------
    tamper_rules:
        ``(old, new)`` byte pairs applied to forwarded port-80 response
        segments.  Empty = an honest hotspot (the control arm).
    upstream_dns:
        Zone entries served to visitors (honest answers by default —
        the §5.1 attack doesn't even need DNS lies).
    """

    NETWORK = Network("192.168.7.0/24")
    GATEWAY_IP = IPv4Address("192.168.7.1")

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        position: Position,
        upstream_segment: LanSegment,
        upstream_ip: str,
        upstream_gateway: str,
        *,
        ssid: str = "FreeAirportWiFi",
        channel: int = 11,
        zone: Optional[DnsZone] = None,
        tamper_rules: Optional[list[tuple[bytes, bytes]]] = None,
        name: str = "hotspot",
    ) -> None:
        self.sim = sim
        self.ssid = ssid
        self.gateway = Host(sim, f"{name}-gw")
        self.gateway.ip_forward = True
        bssid = MacAddress.random(sim.rng.substream(f"mac.{name}"))
        self.wlan = SoftApInterface("wlan0", medium, position,
                                    bssid=bssid, ssid=ssid, channel=channel)
        self.gateway.add_interface(self.wlan)
        self.wlan.configure_ip(str(self.GATEWAY_IP), str(self.NETWORK.netmask))
        # Upstream ("the hotspot's DSL line").
        uplink_mac = MacAddress.random(sim.rng.substream(f"mac.{name}.up"))
        self.uplink = WiredInterface("eth0", uplink_mac)
        self.uplink.attach_segment(upstream_segment)
        self.gateway.add_interface(self.uplink)
        self.uplink.configure_ip(upstream_ip)
        self.gateway.routing.add_default(IPv4Address(upstream_gateway), "eth0")
        # Visitor services: DHCP names us as gateway and DNS.
        self.dhcp = DhcpServerService(
            self.gateway, "wlan0", LeasePool(self.NETWORK),
            gateway=self.GATEWAY_IP, dns_server=self.GATEWAY_IP,
        )
        self.dns = DnsServerService(self.gateway, zone or DnsZone())
        # NAT visitors out the uplink.
        from repro.netstack.netfilter import Chain, Rule, TargetSnat
        self.gateway.netfilter.append(Chain.POSTROUTING, Rule(
            target=TargetSnat(IPv4Address(upstream_ip)), out_iface="eth0",
        ))
        # In-path tampering: the moral equivalent of the §4.1 netsed
        # proxy, but the hotspot owns the gateway outright so no DNAT
        # gymnastics are needed — just a hook on the forwarding path.
        self.tamper_rules = list(tamper_rules or [])
        self.tamperer = None
        if self.tamper_rules:
            from repro.attacks.tamper import InPathTamperer
            self.tamperer = InPathTamperer(self.gateway, rules=self.tamper_rules,
                                           src_port=80, mode="replace")
            self.tamperer.install()

    @property
    def tampered_segments(self) -> int:
        return self.tamperer.tampered if self.tamperer is not None else 0
