"""Wired-vs-wireless MITM comparison (§1.1, §1.2, §3).

The paper's core argument is comparative: every attack here exists on
wired networks too, but the *prerequisites* differ radically.  This
module encodes each man-in-the-middle path as a structured
:class:`MitmPath` — what access the attacker needs, how many active
steps, what defenses see it — so E-WIRED can print the comparison
table alongside the executable demonstrations (ARP spoofing on a
switch, DNS racing on a hub, rogue AP on the air).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MitmPath", "wired_vs_wireless_paths"]


@dataclass(frozen=True)
class MitmPath:
    """One way of getting into the middle of a victim's traffic."""

    name: str
    medium: str                     # "wired" | "wireless"
    access_required: str            # what foothold the attacker needs first
    physical_presence: str          # where the attacker's body/hardware must be
    active_steps: tuple[str, ...]   # protocol actions once in position
    observable_by: tuple[str, ...]  # what defensive monitoring could notice
    paper_anchor: str

    @property
    def step_count(self) -> int:
        return len(self.active_steps)


def wired_vs_wireless_paths() -> list[MitmPath]:
    """The §1.2 taxonomy, one entry per path the paper names."""
    return [
        MitmPath(
            name="arp-spoof",
            medium="wired",
            access_required="a switch port on the victim's LAN (inside the building)",
            physical_presence="inside the physically secured perimeter",
            active_steps=(
                "learn victim and gateway MAC/IP pairs",
                "continuously poison victim's ARP cache",
                "continuously poison gateway's ARP cache",
                "forward relayed traffic to stay unnoticed",
            ),
            observable_by=("arpwatch-style ARP monitoring", "switch port security"),
            paper_anchor="§1.2 'spoof ... ARP requests'",
        ),
        MitmPath(
            name="dns-spoof",
            medium="wired",
            access_required="visibility of the victim's DNS queries "
                            "(hub segment or resolver compromise)",
            physical_presence="inside the perimeter, on a shared segment",
            active_steps=(
                "observe the query and its transaction id",
                "race a forged response past the real server",
            ),
            observable_by=("duplicate-response detection", "DNSSEC (later)"),
            paper_anchor="§1.2 'spoof DNS requests'",
        ),
        MitmPath(
            name="gateway-compromise",
            medium="wired",
            access_required="administrative compromise of a router in the path",
            physical_presence="none, but requires breaking a hardened host",
            active_steps=(
                "exploit and persist on the gateway",
                "install traffic interception",
            ),
            observable_by=("host integrity monitoring", "router config audits"),
            paper_anchor="§1.2 'compromise a valid gateway machine'",
        ),
        MitmPath(
            name="rogue-ap",
            medium="wireless",
            access_required="the WEP key — held as a valid client, or recovered "
                            "passively with Airsnort",
            physical_presence="radio range: the parking lot",
            active_steps=(
                "beacon the cloned SSID/BSSID",
                "bridge traffic with parprouted",
            ),
            observable_by=("sequence-control monitoring (§2.3)", "radio site audits"),
            paper_anchor="§4 proof-of-concept",
        ),
        MitmPath(
            name="hostile-hotspot",
            medium="wireless",
            access_required="none — the attacker owns the network",
            physical_presence="anywhere clients choose to roam",
            active_steps=(
                "operate an attractive open hotspot",
            ),
            observable_by=(),
            paper_anchor="§1.3.2",
        ),
    ]
