"""Airsnort: passive WEP key recovery (paper §4, references [3][11]).

"It could also be created by an outside attacker who has retrieved the
WEP key via Airsnort and a MAC address that he has observed by
sniffing network traffic."

The attack pipeline: monitor-mode capture → weak-IV filtering → FMS
vote accumulation (:class:`repro.crypto.fms.FmsAttack`) → candidate
verification against a captured frame's ICV.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.sniffer import MonitorSniffer
from repro.crypto.fms import FmsAttack
from repro.crypto.wep import WepError, WepKey, wep_decrypt
from repro.dot11.frames import FrameSubtype
from repro.dot11.mac import MacAddress

__all__ = ["AirsnortAttack"]


class AirsnortAttack:
    """Crack a BSS's WEP key from a sniffer's capture."""

    def __init__(self, sniffer: MonitorSniffer, *, key_length: int = 5,
                 bssid: Optional[MacAddress] = None) -> None:
        self.sniffer = sniffer
        self.bssid = bssid
        self.fms = FmsAttack(key_length=key_length)
        self._fed = 0

    def ingest(self) -> int:
        """Feed new capture samples into the vote tables; returns # fed."""
        samples = list(self.sniffer.fms_samples(self.bssid))
        fresh = samples[self._fed:]
        for iv, ks0 in fresh:
            self.fms.add_sample(iv, ks0)
        self._fed = len(samples)
        return len(fresh)

    def _verifier(self):
        """Key candidate check: does it decrypt a captured frame (valid ICV)?"""
        test_bodies = []
        for cap in self.sniffer.capture.select(subtype=FrameSubtype.DATA, protected=True):
            test_bodies.append(cap.frame.body)
            if len(test_bodies) >= 3:
                break
        if not test_bodies:
            return None

        def verify(candidate: bytes) -> bool:
            key = WepKey(candidate)
            for body in test_bodies:
                try:
                    wep_decrypt(key, body)
                except WepError:
                    return False
            return True

        return verify

    def crack(self, search_width: int = 3) -> Optional[WepKey]:
        """Attempt recovery; None if the votes don't resolve yet."""
        self.ingest()
        verifier = self._verifier()
        candidate = self.fms.recover(verifier=verifier, search_width=search_width)
        if candidate is None:
            return None
        key = WepKey(candidate)
        self.sniffer.sim.trace.emit("airsnort.cracked", self.sniffer.port.name,
                                    key_bits=key.bits,
                                    weak_ivs=self.fms.weak_samples)
        return key

    @property
    def weak_iv_count(self) -> int:
        return self.fms.weak_samples
