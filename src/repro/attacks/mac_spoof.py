"""MAC address spoofing against address filters.

§2.1: "Since MAC addresses can be changed from their factory default
and valid MACs can be sniffed from the network it accomplishes nothing
more than perhaps keeping honest people honest."

§4: the outside attacker uses "a MAC address that he has observed by
sniffing network traffic."
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.sniffer import MonitorSniffer
from repro.dot11.frames import FrameSubtype
from repro.dot11.mac import MacAddress
from repro.hosts.nic import WirelessInterface

__all__ = ["observe_client_macs", "spoof_mac"]


def observe_client_macs(sniffer: MonitorSniffer,
                        bssid: Optional[MacAddress] = None) -> list[MacAddress]:
    """Harvest station addresses that were seen *talking to* a BSS.

    These are, by construction, addresses the AP's filter permits.
    """
    macs: list[MacAddress] = []
    seen: set[MacAddress] = set()
    for cap in sniffer.capture.select(subtype=FrameSubtype.DATA):
        frame = cap.frame
        if not frame.to_ds:
            continue
        if bssid is not None and frame.addr1 != bssid:
            continue
        sta = frame.addr2
        if sta not in seen and not sta.is_multicast:
            seen.add(sta)
            macs.append(sta)
    # Association traffic also names valid clients.
    for cap in sniffer.capture.select(subtype=FrameSubtype.ASSOC_REQ, bssid=bssid):
        sta = cap.frame.addr2
        if sta not in seen:
            seen.add(sta)
            macs.append(sta)
    return macs


def spoof_mac(iface: WirelessInterface, mac: MacAddress) -> MacAddress:
    """Override a NIC's address (``ifconfig wlan0 hw ether ...``).

    Returns the factory address so tests can restore it.  Nothing in
    the protocol resists this; only the §2.3 sequence-number detector
    can notice two radios sharing an address.
    """
    original = iface.mac
    iface.mac = mac
    return original
