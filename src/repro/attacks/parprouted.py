"""parprouted: the proxy-ARP bridging daemon (paper reference [6]).

§4.1: "After the proper configuration of the wireless interfaces an
ARP proxy bridge was established between the two interfaces using
parprouted."  The real daemon answers ARP requests on each interface
for addresses routed via the other and maintains /32 host routes for
discovered stations.  Our host already implements proxy-ARP keyed on
the routing table (see :meth:`repro.hosts.host.Host._handle_arp`); the
daemon object enables it on the bridged pair and manages the host
routes, mirroring Appendix A.
"""

from __future__ import annotations

from repro.hosts.host import Host
from repro.netstack.addressing import IPv4Address
from repro.obs.lineage import flight_recorder
from repro.sim.errors import ConfigurationError

__all__ = ["Parprouted"]


class Parprouted:
    """``parprouted wlan0 eth1`` — proxy-ARP bridge between two interfaces."""

    def __init__(self, host: Host, iface_a: str, iface_b: str) -> None:
        for name in (iface_a, iface_b):
            if name not in host.interfaces:
                raise ConfigurationError(f"{host.name}: no interface {name!r}")
        self.host = host
        self.iface_a = iface_a
        self.iface_b = iface_b
        self.running = False

    def start(self) -> None:
        """Enable proxy-ARP on both interfaces (and IP forwarding)."""
        self.running = True
        self.host.interfaces[self.iface_a].proxy_arp = True
        self.host.interfaces[self.iface_b].proxy_arp = True
        self.host.ip_forward = True
        if self._learn not in self.host.arp_listeners:
            self.host.arp_listeners.append(self._learn)
        self.host.sim.trace.emit("parprouted.start", self.host.name,
                                 bridge=f"{self.iface_a}<->{self.iface_b}")

    def stop(self) -> None:
        self.running = False
        self.host.interfaces[self.iface_a].proxy_arp = False
        self.host.interfaces[self.iface_b].proxy_arp = False
        if self._learn in self.host.arp_listeners:
            self.host.arp_listeners.remove(self._learn)

    def _learn(self, iface, arp) -> None:
        """Dynamic station discovery, as the real daemon does.

        Any ARP whose sender address is seen on one of the bridged
        interfaces yields a /32 route for that sender via that
        interface — so a victim that associates and ARPs for its
        gateway is immediately routable from the other side.
        """
        if not self.running or iface.name not in (self.iface_a, self.iface_b):
            return
        sender = arp.sender_ip
        if sender.is_unspecified or sender in self.host.local_ips():
            return
        existing = self.host.routing.lookup(sender)
        if existing is not None and existing.network.prefix_len == 32:
            return  # already pinned
        self.host.routing.add_host(sender, iface.name)
        rec = flight_recorder()
        if rec is not None and rec.current() is not None:
            rec.hop("parprouted", "learn", host=self.host.name,
                    t=self.host.sim.now, station=str(sender),
                    iface=iface.name)
        self.host.sim.trace.emit("parprouted.learn", self.host.name,
                                 station=str(sender), iface=iface.name)

    def add_station_route(self, ip: "IPv4Address | str", iface: str) -> None:
        """Pin a station's /32 route (``route add -host IP dev IFACE``).

        The real daemon learns these dynamically from ARP traffic; the
        paper's Appendix A sets them statically, which we mirror.
        """
        self.host.routing.add_host(IPv4Address(ip), iface)
