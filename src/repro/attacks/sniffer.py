"""Passive monitor-mode sniffing.

§1.1: "Wireless networks allow clients to sniff other people's
packets."  The sniffer is a radio in monitor mode: it records every
frame in range, on every channel if asked.  Given the WEP key (valid
client, or recovered by Airsnort) it decrypts data frames and
reassembles IP and TCP payloads — everything the victim sends.

It is also the collection front-end for the FMS attack: every
WEP-protected data frame yields an ``(IV, first keystream byte)``
sample via the known LLC/SNAP ``0xAA`` plaintext.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.crypto.wep import WepError, WepKey, wep_decrypt, wep_first_keystream_byte, wep_iv_of
from repro.dot11.capture import CapturedFrame, FrameCapture
from repro.dot11.frames import Dot11Frame, FrameSubtype
from repro.dot11.mac import MacAddress
from repro.netstack.ethernet import llc_decap, ETHERTYPE_IPV4
from repro.netstack.ipv4 import PROTO_TCP, IPv4Packet
from repro.netstack.tcp import TcpSegment
from repro.radio.medium import Medium, RadioPort
from repro.radio.propagation import Position
from repro.sim.errors import ProtocolError
from repro.sim.kernel import Simulator

__all__ = ["MonitorSniffer"]


class MonitorSniffer:
    """A monitor-mode radio with decode helpers."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        position: Position,
        *,
        name: str = "sniffer",
        channel: int = 1,
        all_channels: bool = True,
    ) -> None:
        self.sim = sim
        self.port = RadioPort(name=name, position=position, channel=channel,
                              promiscuous=True, any_channel=all_channels)
        self.port.on_receive = self._on_frame
        medium.attach(self.port)
        self.capture = FrameCapture()

    def _on_frame(self, frame: Dot11Frame, rssi: float, channel: int) -> None:
        self.capture.add(CapturedFrame(time=self.sim.now, channel=channel,
                                       rssi_dbm=rssi, frame=frame))

    def stop(self) -> None:
        self.port.enabled = False

    # ------------------------------------------------------------------
    # FMS sample extraction (feeds repro.attacks.airsnort)
    # ------------------------------------------------------------------
    def fms_samples(self, bssid: Optional[MacAddress] = None) -> Iterator[tuple[bytes, int]]:
        """(IV, keystream byte 0) for every protected data frame seen."""
        for cap in self.capture.select(subtype=FrameSubtype.DATA, protected=True):
            frame = cap.frame
            if bssid is not None and frame.addr3 != bssid and frame.addr2 != bssid \
                    and frame.addr1 != bssid:
                continue
            try:
                yield wep_iv_of(frame.body), wep_first_keystream_byte(frame.body)
            except WepError:
                continue

    # ------------------------------------------------------------------
    # decryption given a key (valid client, or post-Airsnort)
    # ------------------------------------------------------------------
    def decrypted_payloads(self, key: WepKey) -> Iterator[tuple[CapturedFrame, int, bytes]]:
        """Yield (capture, ethertype, l3 payload) for decryptable data frames."""
        for cap in self.capture.select(subtype=FrameSubtype.DATA):
            body = cap.frame.body
            if cap.frame.protected:
                try:
                    body = wep_decrypt(key, body)
                except WepError:
                    continue
            try:
                ethertype, payload = llc_decap(body)
            except ProtocolError:
                continue
            yield cap, ethertype, payload

    def sniffed_tcp_stream(self, key: Optional[WepKey],
                           src_ip, dst_ip, dst_port: int = 80) -> bytes:
        """Reassemble one direction of a TCP flow from sniffed frames.

        This is the §1.1 privacy failure made concrete: the full HTTP
        conversation of a bystander, recovered from the air.
        """
        chunks: dict[int, bytes] = {}
        for cap in self.capture.select(subtype=FrameSubtype.DATA):
            body = cap.frame.body
            if cap.frame.protected:
                if key is None:
                    continue
                try:
                    body = wep_decrypt(key, body)
                except WepError:
                    continue
            try:
                ethertype, payload = llc_decap(body)
                if ethertype != ETHERTYPE_IPV4:
                    continue
                packet = IPv4Packet.from_bytes(payload)
                if packet.src != src_ip or packet.dst != dst_ip or packet.proto != PROTO_TCP:
                    continue
                segment = TcpSegment.from_bytes(packet.payload, packet.src, packet.dst,
                                                verify_checksum=False)
            except ProtocolError:
                continue
            if segment.dst_port == dst_port and segment.payload:
                chunks.setdefault(segment.seq, segment.payload)
        return b"".join(chunks[k] for k in sorted(chunks))

    def observed_stations(self) -> set[MacAddress]:
        """Every transmitter overheard — the MAC harvest that defeats filters."""
        return self.capture.transmitters()
