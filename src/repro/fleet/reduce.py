"""Seed-order reduction: per-worker partials → one deterministic aggregate.

The determinism guarantee of the fleet engine is enforced here: whatever
order trials *completed* in (dynamic scheduling, retries, respawned
workers), reduction walks indices ``0..n-1`` in order, builds contiguous
per-chunk :class:`~repro.core.campaign.TrialStats` partials, and merges
them left-to-right.  Because ``TrialStats.merge`` concatenates the
underlying sample lists, the merged aggregate is *bit-for-bit* identical
to serial accumulation — not merely statistically equivalent.
"""

from __future__ import annotations

import math
from functools import reduce as _functools_reduce
from typing import Any, Dict, Optional, TypeVar

from repro.core.campaign import TrialStats
from repro.obs.metrics import MetricsRegistry

__all__ = ["campaign_stats", "merge_all", "merge_snapshots"]

M = TypeVar("M")


def merge_all(first: M, *rest: M) -> M:
    """Fold any mergeable accumulators (objects with ``merge``) into the first."""
    return _functools_reduce(lambda acc, part: acc.merge(part), rest, first)


def merge_snapshots(
    snapshots: Dict[int, dict]) -> Optional[MetricsRegistry]:
    """Fold per-seed registry snapshots into one registry, in seed order.

    The metrics counterpart of :func:`campaign_stats`: whatever order the
    snapshots were *produced* in, the fold walks seeds ascending, so the
    merged registry is bit-identical to a serial accumulation — the fleet
    merge law.  Shared by :attr:`CampaignResult.merged_metrics` and the
    arms-race campaign's per-generation reduction.  ``None`` when empty.
    """
    if not snapshots:
        return None
    merged = MetricsRegistry()
    for seed in sorted(snapshots):
        merged.merge(MetricsRegistry.from_snapshot(snapshots[seed]))
    return merged


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def campaign_stats(per_index: Dict[int, Any], n: int,
                   chunk: Optional[int] = None) -> Optional[TrialStats]:
    """Reduce per-trial values into one :class:`TrialStats`, in seed order.

    Returns ``None`` when the campaign's values are not numeric (a sweep
    of experiment runners returns dict payloads; those aggregate as raw
    per-seed results instead).  Missing indices — trials that failed all
    attempts — contribute nothing, exactly as in a serial run that
    recorded the same failures.
    """
    values = [per_index[i] for i in sorted(per_index)]
    if values and not all(_is_numeric(v) for v in values):
        return None
    chunk = chunk if chunk and chunk > 0 else max(1, math.ceil(n / 8))
    parts: list[TrialStats] = []
    for start in range(0, max(n, 1), chunk):
        part = TrialStats()
        for i in range(start, min(start + chunk, n)):
            if i in per_index:
                part.add(per_index[i])
        parts.append(part)
    return merge_all(TrialStats(), *parts)
