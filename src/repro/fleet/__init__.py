"""Process-parallel multi-seed campaign engine.

The paper's claims are statistical — luring success, capture rates,
tunnel overhead — so every figure is estimated by running the same
simulated world under many seeds.  This package shards those sweeps
across ``multiprocessing`` workers while keeping the repository's
determinism contract intact:

* a trial's result depends only on its seed, never on worker assignment
  or completion order;
* per-worker partials are reduced **in seed order** through the
  mergeable stats layer (:mod:`repro.sim.stats`,
  :class:`~repro.core.campaign.TrialStats`), so parallel aggregates are
  bit-for-bit identical to serial ones;
* per-trial faults (exceptions, timeouts, dead workers) are retried and
  then *recorded*, never allowed to abort the sweep.

Entry points: :func:`run_campaign` here, ``run_trials(..., workers=N)``
in :mod:`repro.core.campaign`, and ``python -m repro sweep`` on the
command line.  See DESIGN.md §7 for the architecture sketch.
"""

from repro.fleet.channel import fleet_publish, publishing
from repro.fleet.errors import (CampaignError, FleetError, TrialFailure,
                                FAIL_CRASH, FAIL_ERROR, FAIL_TIMEOUT)
from repro.fleet.reduce import campaign_stats, merge_all
from repro.fleet.scheduler import CampaignResult, run_campaign
from repro.fleet.worker import TrialOutcome

__all__ = [
    "CampaignError",
    "CampaignResult",
    "FleetError",
    "TrialFailure",
    "TrialOutcome",
    "FAIL_CRASH",
    "FAIL_ERROR",
    "FAIL_TIMEOUT",
    "campaign_stats",
    "fleet_publish",
    "merge_all",
    "publishing",
    "run_campaign",
]
