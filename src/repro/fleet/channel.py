"""The worker→parent snapshot channel: live telemetry out of running trials.

The fleet's base contract ships one result per trial *after* it
finishes.  Long-running campaign trials (``repro.telemetry``'s
open-loop shards) additionally want to stream interim observations —
cumulative :class:`~repro.obs.metrics.MetricsRegistry` snapshots —
while the trial is still running, so the parent can export a live
merged view.

The channel is ambient, mirroring :func:`repro.obs.runtime.collecting`:
the scheduler installs a publisher around each trial (a direct callback
in serial mode, a result-queue writer inside worker processes) and the
trial calls :func:`fleet_publish` whenever it has something to say.
With no publisher installed the call is a no-op costing one global read
— so a trial that publishes runs bit-identically under ``run_campaign``
with or without ``on_snapshot``, and under a bare direct call.

Publishing is strictly observational: payloads flow worker→parent only,
nothing ever comes back, so the simulation cannot be perturbed by
whether anyone is listening (the exporter-on/off determinism golden in
``tests/telemetry/`` pins this).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Optional

__all__ = ["fleet_publish", "publishing"]

_publisher: Optional[Callable[[dict], None]] = None


@contextmanager
def publishing(publish: Callable[[dict], None]) -> Iterator[None]:
    """Install ``publish`` as the ambient snapshot publisher for the block.

    Contexts nest (innermost wins) and restore on exit even when the
    body raises — including the worker's SIGALRM trial timeout.
    """
    global _publisher
    previous = _publisher
    _publisher = publish
    try:
        yield
    finally:
        _publisher = previous


def fleet_publish(payload: dict) -> None:
    """Ship ``payload`` to the campaign parent, if anyone is listening.

    ``payload`` must be picklable (it may cross a process boundary) and
    should be small and cumulative — the parent keeps only the latest
    payload per trial, so a lost or coalesced snapshot never loses
    information, merely staleness.
    """
    publisher = _publisher
    if publisher is not None:
        publisher(payload)
