"""Worker-process side of the fleet engine.

A worker is a plain loop: pull a trial index off the task queue, run
``trial(seed_base + index)`` under an optional SIGALRM-based per-trial
timeout, and push the outcome to the result queue.  Workers never decide
policy — retries, watchdogs, and reduction all live in the parent
(:mod:`repro.fleet.scheduler`) so that a worker can be killed and
respawned at any moment without losing campaign state.

Wire protocol (all messages are 5-tuples on the result queue)::

    ("start", worker_id, index, None, None)        # about to run index
    ("snap",  worker_id, index, payload, None)     # interim fleet_publish
    ("ok",    worker_id, index, value, extra)      # extra: dict | None
    ("fail",  worker_id, index, kind, message)     # kind: "error" | "timeout"
    ("bye",   worker_id, None,  None, None)        # clean shutdown

``"snap"`` messages are emitted whenever the running trial calls
:func:`repro.fleet.channel.fleet_publish`; the parent forwards each to
the campaign's ``on_snapshot`` callback.  They may appear any number of
times (including zero) between a ``"start"`` and its matching
``"ok"``/``"fail"``.

``extra`` on an ``"ok"`` message is ``None`` or a dict with optional
keys ``"trace"`` (serialized trace records for sampled seeds),
``"metrics"`` (the trial's :class:`MetricsRegistry` snapshot when the
campaign collects metrics) and ``"lineage"`` (a truncated serialized
flight-recorder sample when the campaign runs with
``flight_recorder=N``).

``"start"`` always precedes the matching ``"ok"``/``"fail"`` and the
queue preserves per-worker ordering, so the parent always knows which
index a dead or hung worker was holding.
"""

from __future__ import annotations

import signal
from dataclasses import dataclass
from typing import Any, Callable, FrozenSet, Optional

from repro.fleet.channel import publishing
from repro.fleet.errors import FAIL_ERROR, FAIL_TIMEOUT
from repro.obs.lineage import recording
from repro.obs.runtime import collecting
from repro.sim.trace import Trace

__all__ = ["LineageCollectingTrial", "MetricsCollectingTrial",
           "TrialOutcome", "run_one", "worker_main"]


@dataclass
class TrialOutcome:
    """Optional rich return type for trial callables.

    A trial may return a bare value (float for campaigns, any picklable
    payload for sweeps) or a ``TrialOutcome`` carrying the value plus the
    world's :class:`~repro.sim.trace.Trace`.  For seeds the campaign was
    asked to sample (``sample_traces=k``), the worker serializes the
    trace with :meth:`TraceRecord.to_dict` and ships it to the parent.

    ``metrics`` carries the trial's observability snapshot
    (:meth:`MetricsRegistry.snapshot`); it is normally attached by
    :class:`MetricsCollectingTrial` rather than by the trial itself.
    """

    value: Any
    trace: Optional[Trace] = None
    metrics: Optional[dict] = None
    lineage: Optional[list] = None


class MetricsCollectingTrial:
    """Picklable wrapper that runs a trial inside a metrics context.

    The wrapped trial executes under :func:`repro.obs.runtime.collecting`,
    so every instrumented hot point in the stack records into a fresh
    per-trial registry; the snapshot ships to the parent on the trial's
    ``TrialOutcome``.  Collection is observational only, so the trial's
    value is identical with or without the wrapper (the fleet's
    determinism contract extends to metrics: parent-side seed-order
    merge == one serial registry).
    """

    def __init__(self, trial: Callable[[int], Any]) -> None:
        self.trial = trial

    def __call__(self, seed: int) -> "TrialOutcome":
        with collecting() as col:
            result = self.trial(seed)
        snapshot = col.snapshot()
        if isinstance(result, TrialOutcome):
            result.metrics = snapshot
            return result
        return TrialOutcome(value=result, metrics=snapshot)


class LineageCollectingTrial:
    """Picklable wrapper that runs a trial under a flight recorder.

    The recorder's ring buffer *is* the truncation: with
    ``capacity=sample`` only the newest ``sample`` lineages survive the
    trial, so worker memory and the result-queue payload stay bounded no
    matter how much traffic the trial generates.  Raw frame bytes are
    clipped by :meth:`FlightRecorder.to_dicts`'s ``raw_limit`` on the
    way out.  Recording is observational only — the fleet's determinism
    contract (trial value depends only on the seed) is unchanged.
    """

    def __init__(self, trial: Callable[[int], Any], sample: int = 256) -> None:
        self.trial = trial
        self.sample = max(1, sample)

    def __call__(self, seed: int) -> "TrialOutcome":
        with recording(capacity=self.sample) as rec:
            result = self.trial(seed)
        lineage = rec.to_dicts()
        if isinstance(result, TrialOutcome):
            result.lineage = lineage
            return result
        return TrialOutcome(value=result, lineage=lineage)


class _TrialTimeout(Exception):
    """Internal: raised by the SIGALRM handler when a trial overruns."""


def _on_alarm(signum: int, frame: Any) -> None:
    raise _TrialTimeout()


def run_one(trial: Callable[[int], Any], seed: int,
            timeout: Optional[float] = None) -> Any:
    """Run one trial, raising :class:`_TrialTimeout` if it overruns.

    The timeout uses ``signal.setitimer`` where available (POSIX main
    thread); elsewhere the trial runs unguarded and the parent-side
    watchdog is the only enforcement.  Pure-Python trials observe the
    alarm between bytecodes; trials hung inside C code that blocks
    signals are caught by the parent watchdog instead.
    """
    if timeout is None or not hasattr(signal, "setitimer"):
        return trial(seed)
    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return trial(seed)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def worker_main(worker_id: int, trial: Callable[[int], Any], seed_base: int,
                timeout: Optional[float], trace_indices: FrozenSet[int],
                task_queue: Any, result_queue: Any) -> None:
    """Process entry point: drain the task queue until a ``None`` sentinel."""
    while True:
        index = task_queue.get()
        if index is None:
            result_queue.put(("bye", worker_id, None, None, None))
            return
        result_queue.put(("start", worker_id, index, None, None))

        def ship_snapshot(payload: dict, _index: int = index) -> None:
            result_queue.put(("snap", worker_id, _index, payload, None))

        try:
            with publishing(ship_snapshot):
                outcome = run_one(trial, seed_base + index, timeout)
        except _TrialTimeout:
            result_queue.put(("fail", worker_id, index, FAIL_TIMEOUT,
                              f"trial exceeded its {timeout}s timeout"))
            continue
        except Exception as exc:
            result_queue.put(("fail", worker_id, index, FAIL_ERROR,
                              f"{type(exc).__name__}: {exc}"))
            continue
        value, extra = outcome, None
        if isinstance(outcome, TrialOutcome):
            value = outcome.value
            extra = outcome_extra(outcome, index in trace_indices)
        result_queue.put(("ok", worker_id, index, value, extra))


def outcome_extra(outcome: TrialOutcome, ship_trace: bool) -> Optional[dict]:
    """Build the ``extra`` slot of an ``"ok"`` message (None when empty)."""
    extra: dict = {}
    if ship_trace and outcome.trace is not None:
        extra["trace"] = outcome.trace.to_dicts()
    if outcome.metrics is not None:
        extra["metrics"] = outcome.metrics
    if outcome.lineage is not None:
        extra["lineage"] = outcome.lineage
    return extra or None
