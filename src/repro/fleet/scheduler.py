"""Parent-process side of the fleet engine: sharding, watchdogs, reduction.

``run_campaign`` shards an ``n``-seed sweep across ``workers`` processes
while preserving the repository's determinism contract:

* each trial's result depends only on its seed (``seed_base + index``) —
  never on which worker ran it or in what order trials completed;
* results are reduced in seed order (:mod:`repro.fleet.reduce`), so the
  aggregate is bit-for-bit identical to a serial run.

Scheduling is dynamic (one shared task queue, workers pull as they
finish) which keeps all cores busy regardless of per-trial variance;
determinism is unaffected because reduction ignores completion order.

Fault containment: a trial that raises is reported by its worker; a
trial that overruns its ``timeout`` is interrupted by the worker's
SIGALRM; a trial hung in signal-blocking code is killed by the parent
watchdog; a worker process that dies outright (segfault, ``os._exit``)
is detected via its exit code and replaced.  In every case the affected
trial is retried (``retries`` times, default once) and, if it keeps
failing, recorded as a :class:`~repro.fleet.errors.TrialFailure` — the
rest of the sweep always completes.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.campaign import TrialStats
from repro.fleet.channel import publishing
from repro.fleet.errors import (FAIL_CRASH, FAIL_ERROR, FAIL_TIMEOUT,
                                FleetError, TrialFailure)
from repro.fleet.reduce import campaign_stats
from repro.fleet.worker import (LineageCollectingTrial,
                                MetricsCollectingTrial, TrialOutcome,
                                _TrialTimeout, outcome_extra, run_one,
                                worker_main)
from repro.obs.metrics import MetricsRegistry

__all__ = ["CampaignResult", "run_campaign"]

#: How long past the worker-side alarm the parent waits before declaring a
#: worker hung and killing it (the alarm normally fires first; the watchdog
#: only triggers for trials stuck in signal-blocking native code).
_WATCHDOG_GRACE_S = 1.0
#: Poll interval for the parent's event loop.
_POLL_S = 0.05


@dataclass
class CampaignResult:
    """Everything a sweep produced, reducible and serializable.

    ``per_index`` maps trial index → value for every trial that
    succeeded; ``failures`` lists every trial that failed all attempts;
    ``traces`` maps seed → serialized trace records for sampled seeds;
    ``metrics`` maps seed → per-trial metrics snapshot when the campaign
    ran with ``collect_metrics=True``; ``lineages`` maps seed → that
    trial's truncated flight-recorder sample when the campaign ran with
    ``flight_recorder=N``.
    """

    n: int
    seed_base: int
    workers: int
    elapsed_s: float
    per_index: Dict[int, Any] = field(default_factory=dict)
    failures: List[TrialFailure] = field(default_factory=list)
    traces: Dict[int, List[dict]] = field(default_factory=dict)
    metrics: Dict[int, dict] = field(default_factory=dict)
    lineages: Dict[int, List[dict]] = field(default_factory=dict)

    @property
    def per_seed(self) -> Dict[int, Any]:
        """Successful results keyed by seed, in seed order."""
        return {self.seed_base + i: self.per_index[i]
                for i in sorted(self.per_index)}

    @property
    def ok(self) -> int:
        """Number of trials that produced a result."""
        return len(self.per_index)

    @property
    def stats(self) -> Optional[TrialStats]:
        """Seed-order :class:`TrialStats` aggregate (None for non-numeric sweeps)."""
        return campaign_stats(self.per_index, self.n)

    @property
    def throughput(self) -> float:
        """Resolved trials per wall-clock second."""
        total = self.ok + len(self.failures)
        return total / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def merged_metrics(self) -> Optional[MetricsRegistry]:
        """All per-trial registries folded together, in seed order.

        Seed-order reduction makes the merged registry independent of
        which worker ran which trial and of completion order — the same
        contract :func:`~repro.fleet.reduce.campaign_stats` upholds for
        numeric results.  ``None`` when the campaign collected no
        metrics.
        """
        from repro.fleet.reduce import merge_snapshots
        return merge_snapshots(self.metrics)

    @property
    def merged_lineages(self) -> List[dict]:
        """Every shipped lineage sample concatenated in seed order.

        Like :attr:`merged_metrics`, the seed-order fold makes the
        merged list independent of worker assignment and completion
        order.  Each dict is annotated with its ``"seed"`` — trace_ids
        restart at 1 in every trial, so the seed is what disambiguates
        lineages from different trials (rebuild one trial's view with
        ``FlightRecorder.from_dicts(result.lineages[seed])``).
        """
        merged: List[dict] = []
        for seed in sorted(self.lineages):
            merged.extend({**ln, "seed": seed} for ln in self.lineages[seed])
        return merged

    def to_json_dict(self) -> dict:
        """JSON-shaped summary used by ``python -m repro sweep --json``."""
        merged = self.merged_metrics
        return {
            "trials": self.n,
            "seed_base": self.seed_base,
            "workers": self.workers,
            "elapsed_s": self.elapsed_s,
            "ok": self.ok,
            "results": [{"seed": seed, "value": value}
                        for seed, value in self.per_seed.items()],
            "failures": [f.to_dict() for f in self.failures],
            "traces": {str(seed): recs for seed, recs in sorted(self.traces.items())},
            "metrics": merged.snapshot() if merged is not None else None,
            "lineages": self.merged_lineages or None,
        }


def run_campaign(n: int, trial: Callable[[int], Any], *,
                 seed_base: int = 1000, workers: int = 1,
                 timeout: Optional[float] = None, retries: int = 1,
                 sample_traces: int = 0,
                 collect_metrics: bool = False,
                 flight_recorder: int = 0,
                 on_snapshot: Optional[Callable[[int, dict], None]] = None,
                 ) -> CampaignResult:
    """Run ``trial(seed)`` for ``n`` seeds, sharded over ``workers`` processes.

    Parameters
    ----------
    trial:
        Callable of one seed.  May return a number (aggregated into
        :attr:`CampaignResult.stats`), any picklable payload (kept as raw
        per-seed results), or a :class:`TrialOutcome` to also ship a
        sampled trace back to the parent.  Under the ``fork`` start
        method (Linux) closures work; under ``spawn`` the callable must
        be picklable (module-level function or callable instance).
    workers:
        ``1`` runs everything in-process (no multiprocessing machinery);
        ``>1`` spawns that many worker processes.
    timeout:
        Per-trial wall-clock budget in seconds.  Overruns are recorded
        as failures, not sweep aborts.
    retries:
        Extra attempts granted to a failed trial before it is recorded
        as a :class:`TrialFailure`.
    sample_traces:
        Ship serialized traces for the first ``k`` seeds (only for
        trials returning :class:`TrialOutcome` with a trace attached).
    collect_metrics:
        Run every trial inside a fresh observability context and ship
        each trial's :class:`MetricsRegistry` snapshot to the parent
        (see :attr:`CampaignResult.merged_metrics`).  Purely
        observational — trial values are unchanged.
    flight_recorder:
        ``N > 0`` runs every trial under a flight recorder whose ring
        buffer keeps the newest ``N`` frame lineages; each trial's
        sample ships to the parent (see
        :attr:`CampaignResult.lineages` / ``merged_lineages``).  Like
        metrics, recording never perturbs trial values.
    on_snapshot:
        Parent-side callback ``(index, payload)`` invoked for every
        interim snapshot a running trial ships via
        :func:`repro.fleet.channel.fleet_publish` — the live-telemetry
        channel ``repro.telemetry``'s campaign daemon exports from.
        Snapshots arrive in per-trial publish order; across trials the
        interleaving follows completion timing, so listeners should
        treat payloads as *latest cumulative state per index* (exactly
        what the merge law needs).  The callback runs on the scheduling
        thread; exceptions it raises are contained and disable further
        delivery rather than aborting the sweep.
    """
    if n < 0:
        raise FleetError(f"trial count must be >= 0, got {n}")
    if retries < 0:
        raise FleetError(f"retries must be >= 0, got {retries}")
    if flight_recorder > 0:
        trial = LineageCollectingTrial(trial, flight_recorder)
    if collect_metrics:
        trial = MetricsCollectingTrial(trial)
    trace_indices = frozenset(range(min(max(sample_traces, 0), n)))
    listener = _SnapshotListener(on_snapshot)
    started = time.perf_counter()
    if workers <= 1 or n <= 1:
        per_index, failures, traces, metrics, lineages = _run_serial(
            n, trial, seed_base, timeout, retries, trace_indices, listener)
        workers = 1
    else:
        per_index, failures, traces, metrics, lineages = _run_parallel(
            n, trial, seed_base, min(workers, n), timeout, retries,
            trace_indices, listener)
    return CampaignResult(
        n=n, seed_base=seed_base, workers=workers,
        elapsed_s=time.perf_counter() - started,
        per_index=per_index,
        failures=sorted(failures, key=lambda f: f.index),
        traces={seed_base + i: recs for i, recs in sorted(traces.items())},
        metrics={seed_base + i: snap for i, snap in sorted(metrics.items())},
        lineages={seed_base + i: lns for i, lns in sorted(lineages.items())})


class _SnapshotListener:
    """Contained delivery of interim snapshots to ``on_snapshot``.

    A listener that raises is switched off (with a one-line warning via
    the failure kept on the instance) instead of killing the sweep —
    telemetry export must never be able to abort a campaign.
    """

    def __init__(self, on_snapshot: Optional[Callable[[int, dict], None]]) -> None:
        self.on_snapshot = on_snapshot
        self.error: Optional[BaseException] = None

    @property
    def active(self) -> bool:
        return self.on_snapshot is not None and self.error is None

    def deliver(self, index: int, payload: dict) -> None:
        if not self.active:
            return
        try:
            self.on_snapshot(index, payload)  # type: ignore[misc]
        except Exception as exc:
            self.error = exc


# ----------------------------------------------------------------------
# serial fast path (workers=1): same semantics, no multiprocessing
# ----------------------------------------------------------------------

def _run_serial(n, trial, seed_base, timeout, retries, trace_indices,
                listener):
    per_index: Dict[int, Any] = {}
    failures: List[TrialFailure] = []
    traces: Dict[int, List[dict]] = {}
    metrics: Dict[int, dict] = {}
    lineages: Dict[int, List[dict]] = {}
    for index in range(n):
        for attempt in range(1, retries + 2):
            try:
                with publishing(lambda payload, _i=index:
                                listener.deliver(_i, payload)):
                    outcome = run_one(trial, seed_base + index, timeout)
            except _TrialTimeout:
                kind, message = FAIL_TIMEOUT, f"trial exceeded its {timeout}s timeout"
            except Exception as exc:
                kind, message = FAIL_ERROR, f"{type(exc).__name__}: {exc}"
            else:
                value = outcome
                if isinstance(outcome, TrialOutcome):
                    value = outcome.value
                    extra = outcome_extra(outcome, index in trace_indices)
                    if extra is not None:
                        if "trace" in extra:
                            traces[index] = extra["trace"]
                        if "metrics" in extra:
                            metrics[index] = extra["metrics"]
                        if "lineage" in extra:
                            lineages[index] = extra["lineage"]
                per_index[index] = value
                break
            if attempt == retries + 1:
                failures.append(TrialFailure(
                    seed=seed_base + index, index=index, kind=kind,
                    message=message, attempts=attempt))
    return per_index, failures, traces, metrics, lineages


# ----------------------------------------------------------------------
# parallel path
# ----------------------------------------------------------------------

def _fleet_context():
    """``fork`` when the platform offers it (fast, closure-friendly);
    ``spawn`` otherwise (requires picklable trials)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class _Fleet:
    """Book-keeping for one parallel sweep."""

    def __init__(self, ctx, n, trial, seed_base, workers, timeout,
                 retries, trace_indices, listener):
        self.ctx = ctx
        self.n = n
        self.trial = trial
        self.seed_base = seed_base
        self.timeout = timeout
        self.retries = retries
        self.trace_indices = trace_indices
        self.listener = listener
        # Tasks ride an mp.Queue (buffered: the parent can enqueue the whole
        # sweep up-front without blocking).  Results ride a SimpleQueue:
        # its put() writes to the pipe synchronously in the worker, so a
        # worker that dies mid-trial has always flushed its "start"
        # message first and the parent knows exactly which index it held.
        self.task_queue = ctx.Queue()
        self.result_queue = ctx.SimpleQueue()
        self.procs: Dict[int, Any] = {}          # live worker id -> Process
        self.in_flight: Dict[int, tuple] = {}    # worker id -> (index, deadline)
        self.failed_attempts: Dict[int, int] = {}
        self.per_index: Dict[int, Any] = {}
        self.failures: List[TrialFailure] = []
        self.traces: Dict[int, List[dict]] = {}
        self.metrics: Dict[int, dict] = {}
        self.lineages: Dict[int, List[dict]] = {}
        self.resolved: set[int] = set()
        self._next_worker_id = 0
        self._last_progress = time.monotonic()
        self._stall_s = max(5.0, 2.0 * (timeout or 0.0))
        for index in range(n):
            self.task_queue.put(index)
        for _ in range(workers):
            self._spawn()

    # -- workers -------------------------------------------------------
    def _spawn(self) -> None:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        proc = self.ctx.Process(
            target=worker_main,
            args=(worker_id, self.trial, self.seed_base, self.timeout,
                  self.trace_indices, self.task_queue, self.result_queue),
            daemon=True)
        proc.start()
        self.procs[worker_id] = proc

    def _retire(self, worker_id: int, *, kill: bool = False) -> None:
        proc = self.procs.pop(worker_id, None)
        self.in_flight.pop(worker_id, None)
        if proc is None:
            return
        if kill and proc.is_alive():
            proc.terminate()
        proc.join(timeout=1.0)

    # -- per-trial resolution ------------------------------------------
    def _record_success(self, index, value, extra) -> None:
        if index in self.resolved:
            return  # stale duplicate (e.g. retry raced a watchdog kill)
        self.resolved.add(index)
        self.per_index[index] = value
        if extra is not None:
            if "trace" in extra:
                self.traces[index] = extra["trace"]
            if "metrics" in extra:
                self.metrics[index] = extra["metrics"]
            if "lineage" in extra:
                self.lineages[index] = extra["lineage"]

    def _record_failed_attempt(self, index, kind, message) -> None:
        if index in self.resolved:
            return
        attempts = self.failed_attempts.get(index, 0) + 1
        self.failed_attempts[index] = attempts
        if attempts <= self.retries:
            self.task_queue.put(index)  # one more chance
        else:
            self.resolved.add(index)
            self.failures.append(TrialFailure(
                seed=self.seed_base + index, index=index, kind=kind,
                message=message, attempts=attempts))

    # -- failure detection ---------------------------------------------
    def _deadline(self) -> Optional[float]:
        if self.timeout is None:
            return None
        return time.monotonic() + self.timeout + _WATCHDOG_GRACE_S

    def _police_workers(self) -> None:
        """Reap dead workers, kill hung ones, keep the fleet staffed."""
        for worker_id in list(self.procs):
            proc = self.procs[worker_id]
            flight = self.in_flight.get(worker_id)
            if not proc.is_alive():
                # Drain any messages the worker managed to send first.
                if self._drain_one():
                    return  # re-enter after processing; state may have changed
                self._retire(worker_id)
                if flight is not None:
                    index = flight[0]
                    self._record_failed_attempt(
                        index, FAIL_CRASH,
                        f"worker exited with code {proc.exitcode} mid-trial")
                if len(self.resolved) < self.n:
                    self._spawn()
            elif (flight is not None and flight[1] is not None
                  and time.monotonic() > flight[1]):
                index = flight[0]
                self._retire(worker_id, kill=True)
                self._record_failed_attempt(
                    index, FAIL_TIMEOUT,
                    f"trial exceeded its {self.timeout}s timeout "
                    f"(hung worker killed by watchdog)")
                if len(self.resolved) < self.n:
                    self._spawn()
        self._recover_lost_tasks()

    def _recover_lost_tasks(self) -> None:
        """Last-resort accounting: re-enqueue indices nobody is working on.

        The only way a task can vanish is a worker dying in the few
        instructions between pulling an index off the task queue and
        announcing it on the (synchronous) result queue — e.g. an
        external SIGKILL at exactly the wrong moment.  If the fleet has
        been idle (no in-flight trials, no progress) long enough that
        any queued task would certainly have been picked up, re-enqueue
        everything unresolved; duplicate completions are deduped by
        :meth:`_record_success`.
        """
        if self.in_flight or len(self.resolved) >= self.n:
            return
        if time.monotonic() - self._last_progress < self._stall_s:
            return
        for index in range(self.n):
            if index not in self.resolved:
                self.task_queue.put(index)
        self._last_progress = time.monotonic()

    # -- event loop ----------------------------------------------------
    def _handle(self, message) -> None:
        kind, worker_id, index, a, b = message
        self._last_progress = time.monotonic()
        if kind == "start":
            if worker_id in self.procs:
                self.in_flight[worker_id] = (index, self._deadline())
        elif kind == "snap":
            if index not in self.resolved:  # drop stale retry-race snapshots
                self.listener.deliver(index, a)
        elif kind == "ok":
            self.in_flight.pop(worker_id, None)
            self._record_success(index, a, b)
        elif kind == "fail":
            self.in_flight.pop(worker_id, None)
            self._record_failed_attempt(index, a, b)
        # "bye" needs no action here.

    def _poll_result(self, timeout: float):
        """Wait up to ``timeout`` for a result message; None on silence."""
        reader = getattr(self.result_queue, "_reader", None)
        if reader is not None:
            if not reader.poll(timeout):
                return None
        else:  # pragma: no cover - SimpleQueue always has _reader today
            end = time.monotonic() + timeout
            while self.result_queue.empty():
                if time.monotonic() >= end:
                    return None
                time.sleep(0.005)
        try:
            return self.result_queue.get()
        except EOFError:  # pragma: no cover - all writers vanished
            return None

    def _drain_one(self) -> bool:
        message = self._poll_result(0.0)
        if message is None:
            return False
        self._handle(message)
        return True

    def run(self):
        try:
            while len(self.resolved) < self.n:
                message = self._poll_result(_POLL_S)
                if message is None:
                    self._police_workers()
                    continue
                self._handle(message)
            return (self.per_index, self.failures, self.traces, self.metrics,
                    self.lineages)
        finally:
            self._shutdown()

    def _shutdown(self) -> None:
        for _ in self.procs:
            self.task_queue.put(None)
        deadline = time.monotonic() + 5.0
        for worker_id in list(self.procs):
            proc = self.procs[worker_id]
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            self.procs.pop(worker_id, None)
        # Don't let the task queue's feeder thread block interpreter exit.
        self.task_queue.cancel_join_thread()
        self.task_queue.close()
        self.result_queue.close()


def _run_parallel(n, trial, seed_base, workers, timeout, retries,
                  trace_indices, listener):
    fleet = _Fleet(_fleet_context(), n, trial, seed_base, workers, timeout,
                   retries, trace_indices, listener)
    return fleet.run()
