"""Failure taxonomy for parallel campaigns.

A campaign never aborts because one trial went wrong: every per-trial
problem is classified, retried once (by default), and — if it persists —
recorded as a :class:`TrialFailure` in the sweep result.  Only misuse of
the engine itself (bad arguments, unpicklable trial under ``spawn``)
raises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["CampaignError", "FleetError", "TrialFailure",
           "FAIL_CRASH", "FAIL_ERROR", "FAIL_TIMEOUT"]

#: The trial callable raised an exception.
FAIL_ERROR = "error"
#: The trial exceeded its per-trial timeout (worker alarm or parent watchdog).
FAIL_TIMEOUT = "timeout"
#: The worker process died mid-trial (segfault, os._exit, OOM kill, ...).
FAIL_CRASH = "crash"


class FleetError(Exception):
    """Base class for campaign-engine errors."""


@dataclass(frozen=True)
class TrialFailure:
    """One trial that failed every attempt it was given.

    Attributes
    ----------
    seed:
        The trial's seed (``seed_base + index``).
    index:
        The trial's position in the sweep, ``0 <= index < n``.
    kind:
        One of :data:`FAIL_ERROR`, :data:`FAIL_TIMEOUT`, :data:`FAIL_CRASH`.
    message:
        Human-readable description of the last failing attempt.
    attempts:
        Total attempts made (1 + retries).
    """

    seed: int
    index: int
    kind: str
    message: str
    attempts: int

    def to_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "index": self.index, "kind": self.kind,
                "message": self.message, "attempts": self.attempts}


class CampaignError(FleetError):
    """Raised by APIs that promise a complete aggregate (``run_trials``)
    when one or more trials failed all their attempts."""

    def __init__(self, failures: list[TrialFailure]) -> None:
        self.failures = list(failures)
        preview = "; ".join(
            f"seed {f.seed}: {f.kind} ({f.message})" for f in self.failures[:3])
        more = f" (+{len(self.failures) - 3} more)" if len(self.failures) > 3 else ""
        super().__init__(
            f"{len(self.failures)} trial(s) failed after retries: {preview}{more}")
